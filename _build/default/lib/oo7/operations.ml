let insert_composites db ~rng ~count =
  let c = Database.config db in
  List.init count (fun i ->
      let id = Database.num_composites db + i in
      let comp = Clusters.build_one (Database.heap db) c ~rng ~id in
      ignore (Database.append_composite db comp);
      Clusters.index_parts db ~comp;
      comp)

let delete_composite db ~addr =
  let n = Database.num_composites db in
  let rec find i =
    if i >= n then raise (Database.Bad_database "delete_composite: not in directory")
    else if Database.composite db i = addr then i
    else find (i + 1)
  in
  let pos = find 0 in
  Clusters.unindex_parts db ~comp:addr;
  Database.remove_composite db pos
