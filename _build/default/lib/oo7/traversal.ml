open Lbc_pheap

type variant = A | B | C
type kind =
  | T1
  | T2 of variant
  | T3 of variant
  | T4
  | T5
  | T6
  | T7
  | T12 of variant

let variant_name = function A -> "A" | B -> "B" | C -> "C"

let name = function
  | T1 -> "T1"
  | T2 v -> "T2-" ^ variant_name v
  | T3 v -> "T3-" ^ variant_name v
  | T4 -> "T4"
  | T5 -> "T5"
  | T6 -> "T6"
  | T7 -> "T7"
  | T12 v -> "T12-" ^ variant_name v

let of_name s =
  match String.uppercase_ascii s with
  | "T1" -> Some T1
  | "T2-A" -> Some (T2 A)
  | "T2-B" -> Some (T2 B)
  | "T2-C" -> Some (T2 C)
  | "T3-A" -> Some (T3 A)
  | "T3-B" -> Some (T3 B)
  | "T3-C" -> Some (T3 C)
  | "T4" -> Some T4
  | "T5" -> Some T5
  | "T6" -> Some T6
  | "T7" -> Some T7
  | "T12-A" -> Some (T12 A)
  | "T12-C" -> Some (T12 C)
  | _ -> None

let table3_kinds = [ T12 A; T12 C; T2 A; T2 B; T2 C; T3 A; T3 B; T3 C ]

type result = {
  composite_visits : int;
  atomic_visits : int;
  field_updates : int;
  index_ops : int;
  read_sum : int64;
}

type state = {
  db : Database.t;
  mutable composite_visits : int;
  mutable atomic_visits : int;
  mutable field_updates : int;
  mutable index_ops : int;
  mutable read_sum : int64;
}

(* One plain 8-byte field overwrite: T2/T12's update. *)
let update_plain st part =
  let x = Database.atomic_get st.db ~addr:part "x" in
  Database.atomic_set st.db ~addr:part "x" (Int64.add x 1L);
  st.field_updates <- st.field_updates + 1

(* Indexed-field update: delete the index entry for the old date, change
   the date, insert the new entry (T3). *)
let update_indexed st part =
  let idx = Database.index st.db in
  let date = Database.atomic_get st.db ~addr:part "date" in
  let date' = Int64.add date 1L in
  ignore
    (Iavl.update idx part
       ~new_key:(date', Int64.of_int part)
       ~set:(fun () -> Database.atomic_set st.db ~addr:part "date" date'));
  st.field_updates <- st.field_updates + 1;
  st.index_ops <- st.index_ops + 1

let visit_atomic st part ~update ~times =
  st.atomic_visits <- st.atomic_visits + 1;
  st.read_sum <-
    Int64.add st.read_sum (Database.atomic_get st.db ~addr:part "x");
  match update with
  | None -> ()
  | Some f ->
      for _ = 1 to times do
        f st part
      done

(* DFS over the atomic-part graph of one composite. *)
let walk_graph st root ~per_atomic =
  let c = Database.config st.db in
  let visited = Hashtbl.create 64 in
  let rec go part =
    if not (Hashtbl.mem visited part) then begin
      Hashtbl.add visited part ();
      per_atomic part;
      for k = 0 to c.Schema.connections_per_atomic - 1 do
        let conn =
          Int64.to_int (Database.atomic_get st.db ~addr:part (Schema.conn_to k))
        in
        go
          (Heap.get_field
             (Database.heap st.db)
             Schema.connection ~addr:conn "to")
      done
    end
  in
  go root

let times_of_variant = function A -> 1 | B -> 1 | C -> 4

(* T4: scan the composite's document for a character; T5: overwrite the
   start of the document. *)
let doc_of st comp = Database.composite_get st.db ~addr:comp "document"

let scan_document st comp =
  let doc = doc_of st comp in
  let b = Heap.get_bytes (Database.heap st.db) doc ~len:Schema.doc_size in
  let hits = ref 0 in
  Bytes.iter (fun ch -> if ch = 'A' then incr hits) b;
  st.read_sum <- Int64.add st.read_sum (Int64.of_int !hits)

let update_document st comp =
  let doc = doc_of st comp in
  Heap.set_bytes (Database.heap st.db) doc (Bytes.of_string "REVISED!");
  st.field_updates <- st.field_updates + 1

let visit_composite st comp kind =
  st.composite_visits <- st.composite_visits + 1;
  let root = Database.composite_get st.db ~addr:comp "root_part" in
  match kind with
  | T4 -> scan_document st comp
  | T5 -> update_document st comp
  | T7 ->
      (* T7 shares T1's per-composite behaviour; selection of the single
         assembly happens in [run]. *)
      walk_graph st root ~per_atomic:(fun p -> visit_atomic st p ~update:None ~times:0)
  | T6 -> visit_atomic st root ~update:None ~times:0
  | T12 v ->
      visit_atomic st root ~update:(Some update_plain)
        ~times:(match v with A -> 1 | B -> 1 | C -> 4)
  | T1 -> walk_graph st root ~per_atomic:(fun p -> visit_atomic st p ~update:None ~times:0)
  | T2 v ->
      let times = times_of_variant v in
      walk_graph st root ~per_atomic:(fun p ->
          let update =
            match v with
            | A -> if p = root then Some update_plain else None
            | B | C -> Some update_plain
          in
          visit_atomic st p ~update ~times)
  | T3 v ->
      let times = times_of_variant v in
      walk_graph st root ~per_atomic:(fun p ->
          let update =
            match v with
            | A -> if p = root then Some update_indexed else None
            | B | C -> Some update_indexed
          in
          visit_atomic st p ~update ~times)

let run db kind =
  let st =
    {
      db;
      composite_visits = 0;
      atomic_visits = 0;
      field_updates = 0;
      index_ops = 0;
      read_sum = 0L;
    }
  in
  let c = Database.config db in
  let rec walk_assembly addr level =
    if level = c.Schema.assembly_levels then
      for i = 0 to c.Schema.composites_per_base - 1 do
        visit_composite st
          (Database.assembly_get db ~addr (Schema.child_slot i))
          kind
      done
    else
      for i = 0 to c.Schema.assembly_fanout - 1 do
        walk_assembly (Database.assembly_get db ~addr (Schema.child_slot i)) (level + 1)
      done
  in
  (* T7 processes one pseudo-randomly chosen base assembly; all other
     traversals walk the whole hierarchy. *)
  (match kind with
  | T7 ->
      let rec descend addr level salt =
        if level = c.Schema.assembly_levels then
          for i = 0 to c.Schema.composites_per_base - 1 do
            visit_composite st
              (Database.assembly_get db ~addr (Schema.child_slot i))
              kind
          done
        else begin
          let pick = salt * 2654435761 mod c.Schema.assembly_fanout in
          descend
            (Database.assembly_get db ~addr (Schema.child_slot (abs pick)))
            (level + 1) (salt + 1)
        end
      in
      descend (Database.root_assembly db) 1 c.Schema.seed
  | T1 | T2 _ | T3 _ | T4 | T5 | T6 | T12 _ ->
      walk_assembly (Database.root_assembly db) 1);
  {
    composite_visits = st.composite_visits;
    atomic_visits = st.atomic_visits;
    field_updates = st.field_updates;
    index_ops = st.index_ops;
    read_sum = st.read_sum;
  }
