open Lbc_pheap

exception Bad_database of string

type t = { config : Schema.config; heap : Heap.t; header : int }

let header_addr = Heap.data_start

let attach_heap config heap =
  let t = { config; heap; header = header_addr } in
  let magic =
    Heap.get_u64 heap (header_addr + Layout.offset Schema.header "db_magic")
  in
  if not (Int64.equal magic Schema.db_magic) then
    raise (Bad_database "bad OO7 magic");
  t

let attach_mem config mem ~size = attach_heap config (Heap.attach mem ~size)
let attach_bytes config image = attach_heap config (Heap.of_bytes image)

let attach_txn config txn ~region =
  let mem =
    {
      Heap.read =
        (fun ~offset ~len -> Lbc_core.Node.Txn.read txn ~region ~offset ~len);
      write =
        (fun ~offset b -> Lbc_core.Node.Txn.write txn ~region ~offset b);
    }
  in
  attach_mem config mem ~size:(Schema.region_size config)

let attach_node config node ~region =
  let mem =
    {
      Heap.read =
        (fun ~offset ~len -> Lbc_core.Node.read node ~region ~offset ~len);
      write = (fun ~offset:_ _ -> raise (Bad_database "read-only attachment"));
    }
  in
  attach_mem config mem ~size:(Schema.region_size config)

let config t = t.config
let heap t = t.heap

let header_field t name =
  Heap.get_int t.heap (t.header + Layout.offset Schema.header name)

let root_assembly t = header_field t "root_assembly"
let num_composites t = header_field t "n_composites"

let composite t i =
  if i < 0 || i >= num_composites t then
    invalid_arg (Printf.sprintf "Database.composite: index %d" i);
  Heap.get_int t.heap (header_field t "composite_dir" + (8 * i))

let date_offset = Layout.offset Schema.atomic_part "date"

let dir_capacity t = header_field t "dir_capacity"

let set_header_field t name v =
  Heap.set_int t.heap (t.header + Layout.offset Schema.header name) v

let append_composite t addr =
  let n = num_composites t in
  if n >= dir_capacity t then raise (Bad_database "composite directory full");
  Heap.set_int t.heap (header_field t "composite_dir" + (8 * n)) addr;
  set_header_field t "n_composites" (n + 1);
  n

let remove_composite t i =
  let n = num_composites t in
  if i < 0 || i >= n then invalid_arg "Database.remove_composite";
  let dir = header_field t "composite_dir" in
  if i < n - 1 then
    Heap.set_int t.heap (dir + (8 * i)) (Heap.get_int t.heap (dir + (8 * (n - 1))));
  set_header_field t "n_composites" (n - 1)

let index t =
  Iavl.attach t.heap
    ~slots:(t.header + Layout.offset Schema.header "index_slots")
    ~key_of:(fun part ->
      (Heap.get_u64 t.heap (part + date_offset), Int64.of_int part))

let atomic_get t ~addr name =
  Heap.get_u64 t.heap (addr + Layout.offset Schema.atomic_part name)

let atomic_set t ~addr name v =
  Heap.set_u64 t.heap (addr + Layout.offset Schema.atomic_part name) v

let composite_get t ~addr name =
  Heap.get_int t.heap (addr + Layout.offset (Schema.composite_part t.config) name)

let assembly_get t ~addr name =
  Heap.get_int t.heap (addr + Layout.offset (Schema.assembly t.config) name)

let checksum t =
  (* Mix each atomic part's mutable fields into an order-independent sum. *)
  let mix acc v = Int64.add acc (Int64.mul v 0x9E3779B97F4A7C15L) in
  let acc = ref 0L in
  for ci = 0 to num_composites t - 1 do
    let comp = composite t ci in
    for ai = 0 to t.config.Schema.atomics_per_composite - 1 do
      let part = composite_get t ~addr:comp (Schema.part_slot ai) in
      acc := mix !acc (atomic_get t ~addr:part "date");
      acc := mix !acc (atomic_get t ~addr:part "x");
      acc := mix !acc (atomic_get t ~addr:part "y")
    done
  done;
  !acc
