(** The OO7 query mix (beyond the paper's traversal selection — included
    so the port covers the full benchmark).  All queries are read-only and
    safe to run under a single segment lock. *)

val q1_exact_lookups : Database.t -> lookups:int -> int
(** Q1: look up [lookups] pseudo-randomly chosen atomic parts by id
    (resolved through the composite directory); returns how many were
    found (all, unless the library shrank). *)

val q2_range_1pct : Database.t -> int
(** Q2: count atomic parts whose build date lies in the lowest 1% of the
    date range — an index range scan. *)

val q3_range_10pct : Database.t -> int
(** Q3: same over the lowest 10%. *)

val q4_document_scan : Database.t -> pattern:char -> int
(** Q4-style document scan: occurrences of [pattern] across every
    composite's document. *)

val q7_full_scan : Database.t -> int
(** Q7: scan the whole part index; returns the entry count. *)
