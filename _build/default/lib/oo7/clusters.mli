open Lbc_pheap

(** Construction of one composite-part cluster — shared by the database
    builder and by run-time structural insertion ({!Operations}).

    A cluster is the composite record, its atomic parts (contiguous, so
    they share pages), their connection objects, and the document — just
    over 8 KB in the paper's configuration. *)

val build_one :
  Heap.t -> Schema.config -> rng:Lbc_util.Rng.t -> id:int -> int
(** Allocate and initialize a cluster; returns the composite's address.
    Does {e not} touch the directory or the part index. *)

val index_parts : Database.t -> comp:int -> unit
(** Insert every atomic part of [comp] into the part index. *)

val unindex_parts : Database.t -> comp:int -> unit
(** Remove every atomic part of [comp] from the part index. *)
