open Lbc_pheap

(** Handle to an OO7 database living in a persistent heap.

    The database can be attached three ways with identical semantics:
    over a raw [Bytes.t] image (construction, verification), over an
    arbitrary {!Lbc_pheap.Heap.mem} access pair, or over a coherency
    transaction — in which case every store is captured by [set_range]
    and propagates to peers at commit. *)

type t

exception Bad_database of string

val attach_bytes : Schema.config -> Bytes.t -> t
val attach_mem : Schema.config -> Heap.mem -> size:int -> t

val attach_txn : Schema.config -> Lbc_core.Node.Txn.t -> region:int -> t
(** Reads and writes go through the transaction (and must be covered by a
    lock the transaction holds). *)

val attach_node : Schema.config -> Lbc_core.Node.t -> region:int -> t
(** Read-only attachment to a node's cache, for verification; writes
    raise. *)

val config : t -> Schema.config
val heap : t -> Heap.t
val root_assembly : t -> int
val num_composites : t -> int

val composite : t -> int -> int
(** Address of the i-th composite part (via the directory). *)

val dir_capacity : t -> int

val append_composite : t -> int -> int
(** Register a new composite in the directory; returns its directory
    position.  @raise Bad_database when the directory is full. *)

val remove_composite : t -> int -> unit
(** Swap-remove the composite at the given directory position. *)

val index : t -> Iavl.t
(** The part index: atomic parts ordered by their (mutable) build-date
    field, read indirectly through the part — so a date change that keeps
    a part's ordering position writes no index bytes at all. *)

(** {1 Typed field access} *)

val atomic_get : t -> addr:int -> string -> int64
val atomic_set : t -> addr:int -> string -> int64 -> unit
val composite_get : t -> addr:int -> string -> int
val assembly_get : t -> addr:int -> string -> int

val checksum : t -> int64
(** Order-independent digest of every atomic part's mutable fields
    (date, x, y) — equal iff two replicas agree on the data the
    traversals touch. *)
