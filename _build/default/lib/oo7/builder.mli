(** OO7 database construction.

    Builds the database image deterministically from the configuration's
    seed.  Allocation order matters for fidelity: each composite part is
    allocated immediately followed by its atomic parts, so "the atomic
    parts associated with a particular composite part tend to be clustered
    on the same page while atomic parts from different composite parts are
    usually on different pages" (paper Section 4.1).  The part index is
    built last, on pages of its own. *)

val build : Schema.config -> Bytes.t
(** A fresh database image of [Schema.region_size config] bytes. *)
