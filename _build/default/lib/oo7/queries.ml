open Lbc_pheap

let q1_exact_lookups db ~lookups =
  let c = Database.config db in
  let total = Database.num_composites db * c.Schema.atomics_per_composite in
  let found = ref 0 in
  for i = 0 to lookups - 1 do
    let id = i * 2654435761 land max_int mod total in
    let ci = id / c.Schema.atomics_per_composite in
    let slot = id mod c.Schema.atomics_per_composite in
    let comp = Database.composite db ci in
    let part = Database.composite_get db ~addr:comp (Schema.part_slot slot) in
    if part <> 0 then incr found
  done;
  !found

let range_count db ~frac =
  let c = Database.config db in
  let hi_date = int_of_float (frac *. float_of_int c.Schema.date_range) in
  Iavl.fold_range (Database.index db)
    ~lo:(0L, 0L)
    ~hi:(Int64.of_int hi_date, Int64.max_int)
    ~init:0
    ~f:(fun acc _ -> acc + 1)

let q2_range_1pct db = range_count db ~frac:0.01
let q3_range_10pct db = range_count db ~frac:0.10

let q4_document_scan db ~pattern =
  let hits = ref 0 in
  for ci = 0 to Database.num_composites db - 1 do
    let comp = Database.composite db ci in
    let doc = Database.composite_get db ~addr:comp "document" in
    let b = Heap.get_bytes (Database.heap db) doc ~len:Schema.doc_size in
    Bytes.iter (fun ch -> if ch = pattern then incr hits) b
  done;
  !hits

let q7_full_scan db =
  Iavl.fold (Database.index db) ~init:0 ~f:(fun acc _ -> acc + 1)
