open Lbc_pheap

open Lbc_util

let build (c : Schema.config) =
  if c.Schema.connections_per_atomic > Schema.max_connections then
    invalid_arg "Builder.build: too many connections per atomic part";
  let image = Bytes.make (Schema.region_size c) '\000' in
  let heap = Heap.of_bytes image in
  let rng = Rng.create c.Schema.seed in
  let assembly_layout = Schema.assembly c in
  let header = Heap.alloc heap (Layout.size Schema.header) in
  let set_header name v =
    Heap.set_int heap (header + Layout.offset Schema.header name) v
  in
  (* Design library: one cluster per composite part. *)
  let composites =
    Array.init c.Schema.num_composites (fun ci ->
        Clusters.build_one heap c ~rng ~id:ci)
  in
  (* Assembly hierarchy: a complete tree whose leaves (base assemblies)
     reference random composite parts.  The paper's Table 3 shows all 500
     composites reached (4000 unique bytes for T2-A), so the random
     assignment guarantees coverage: the first [num_composites] reference
     slots are a shuffled enumeration of the library, the rest are drawn
     uniformly, and the whole sequence is shuffled again. *)
  let refs =
    let slots = Schema.composite_visits c in
    let a =
      Array.init slots (fun i ->
          if i < c.Schema.num_composites then composites.(i)
          else Rng.pick rng composites)
    in
    Rng.shuffle rng a;
    a
  in
  let next_ref = ref 0 in
  let next_assembly_id = ref 0 in
  let rec build_assembly level =
    let a = Heap.alloc heap (Layout.size assembly_layout) in
    let seta name v = Heap.set_field heap assembly_layout ~addr:a name v in
    seta "id" !next_assembly_id;
    incr next_assembly_id;
    if level = c.Schema.assembly_levels then begin
      seta "kind" 1;
      for i = 0 to c.Schema.composites_per_base - 1 do
        seta (Schema.child_slot i) refs.(!next_ref);
        incr next_ref
      done
    end
    else begin
      seta "kind" 0;
      for i = 0 to c.Schema.assembly_fanout - 1 do
        seta (Schema.child_slot i) (build_assembly (level + 1))
      done
    end;
    a
  in
  let root = build_assembly 1 in
  (* Composite directory, with spare capacity for structural inserts. *)
  let capacity = 2 * c.Schema.num_composites in
  let dir = Heap.alloc heap (8 * capacity) in
  Array.iteri (fun i comp -> Heap.set_int heap (dir + (8 * i)) comp) composites;
  set_header "root_assembly" root;
  set_header "n_composites" c.Schema.num_composites;
  set_header "composite_dir" dir;
  set_header "dir_capacity" capacity;
  Heap.set_u64 heap (header + Layout.offset Schema.header "db_magic")
    Schema.db_magic;
  (* Part index over every atomic part, ordered by build date (read
     indirectly through the part). *)
  let db = Database.attach_bytes c image in
  Array.iter (fun comp -> Clusters.index_parts db ~comp) composites;
  image
