(** OO7's structural modifications: insert and delete composite parts at
    run time.

    When the database is attached through a coherency transaction, the
    whole insertion — heap allocation (the allocation pointer lives in the
    region), object initialization, directory update and index insertion —
    is captured by [set_range] and propagates to peers atomically at
    commit, which is exactly the point of keeping the allocator inside the
    recoverable heap. *)

val insert_composites : Database.t -> rng:Lbc_util.Rng.t -> count:int -> int list
(** Build [count] new composite clusters, register them in the composite
    directory, and index their atomic parts.  Returns the new composites'
    addresses.  They belong to the design library but are not referenced
    by the assembly hierarchy (as with OO7's freshly inserted parts). *)

val delete_composite : Database.t -> addr:int -> unit
(** Remove a composite from the directory and its atomic parts from the
    index.  The caller must ensure no base assembly still references it
    (OO7 deletes the composites it just inserted).  Heap space is not
    reclaimed (bump allocator), matching RVM's model.
    @raise Database.Bad_database if the composite is not in the
    directory. *)
