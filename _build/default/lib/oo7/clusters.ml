open Lbc_pheap
open Lbc_util

let build_one heap (c : Schema.config) ~rng ~id:ci =
  let composite_layout = Schema.composite_part c in
  let comp = Heap.alloc heap (Layout.size composite_layout) in
  let atomics =
    Array.init c.Schema.atomics_per_composite (fun _ ->
        Heap.alloc heap (Layout.size Schema.atomic_part))
  in
  Array.iteri
    (fun ai part ->
      let id = (ci * c.Schema.atomics_per_composite) + ai in
      let setf name v = Heap.set_field heap Schema.atomic_part ~addr:part name v in
      setf "id" id;
      setf "date" (Rng.int rng c.Schema.date_range);
      setf "x" (Rng.int rng 10_000);
      setf "y" (Rng.int rng 10_000);
      setf "doc_id" id)
    atomics;
  (* Connection objects: the first out-edge of each atomic part forms a
     ring so the graph is connected; the rest are random within the
     composite. *)
  Array.iteri
    (fun ai part ->
      for k = 0 to c.Schema.connections_per_atomic - 1 do
        let conn = Heap.alloc heap (Layout.size Schema.connection) in
        let target =
          if k = 0 then (ai + 1) mod c.Schema.atomics_per_composite
          else Rng.int rng c.Schema.atomics_per_composite
        in
        Heap.set_field heap Schema.connection ~addr:conn "from" part;
        Heap.set_field heap Schema.connection ~addr:conn "to" atomics.(target);
        Heap.set_field heap Schema.connection ~addr:conn "type" k;
        Heap.set_field heap Schema.connection ~addr:conn "length" (Rng.int rng 1000);
        Heap.set_field heap Schema.atomic_part ~addr:part (Schema.conn_to k) conn
      done)
    atomics;
  let doc = Heap.alloc heap Schema.doc_size in
  Heap.set_bytes heap doc
    (Bytes.make Schema.doc_size (Char.chr (0x41 + (ci mod 26))));
  let setc name v = Heap.set_field heap composite_layout ~addr:comp name v in
  setc "id" ci;
  setc "date" (Rng.int rng c.Schema.date_range);
  setc "root_part" atomics.(0);
  setc "document" doc;
  Array.iteri (fun ai part -> setc (Schema.part_slot ai) part) atomics;
  comp

let iter_parts db ~comp f =
  let c = Database.config db in
  for ai = 0 to c.Schema.atomics_per_composite - 1 do
    f (Database.composite_get db ~addr:comp (Schema.part_slot ai))
  done

let index_parts db ~comp =
  let idx = Database.index db in
  iter_parts db ~comp (fun part ->
      if not (Iavl.insert idx part) then
        raise (Database.Bad_database "index_parts: duplicate entry"))

let unindex_parts db ~comp =
  let idx = Database.index db in
  iter_parts db ~comp (fun part ->
      if not (Iavl.delete idx part) then
        raise (Database.Bad_database "unindex_parts: missing entry"))
