(** Deterministic pseudo-random numbers (SplitMix64).

    Every randomized component in the repository (workload generators, the
    OO7 database builder, fault injection) takes an explicit [Rng.t] so that
    simulations and tests are reproducible from a single seed. *)

type t

val create : int -> t
(** [create seed] builds a generator from a seed. *)

val split : t -> t
(** An independent generator derived from the current state. *)

val copy : t -> t

val int64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
