lib/util/pqueue.ml: Array List Stdlib
