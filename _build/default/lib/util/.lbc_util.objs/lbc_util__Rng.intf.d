lib/util/rng.mli:
