lib/util/pqueue.mli:
