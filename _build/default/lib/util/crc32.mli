(** CRC-32 (IEEE 802.3 polynomial, reflected), used to protect log records
    against partial or torn writes.  The implementation is table-driven and
    allocation-free on the update path. *)

type t = int32
(** A running CRC value. *)

val empty : t
(** CRC of the empty string. *)

val update : t -> Bytes.t -> pos:int -> len:int -> t
(** [update crc b ~pos ~len] extends [crc] with [len] bytes of [b] starting
    at [pos].  Raises [Invalid_argument] if the range is out of bounds. *)

val update_string : t -> string -> t
(** [update_string crc s] extends [crc] with all of [s]. *)

val finish : t -> int32
(** Final CRC value (post-conditioning applied). *)

val bytes : Bytes.t -> pos:int -> len:int -> int32
(** One-shot CRC of a byte range. *)

val string : string -> int32
(** One-shot CRC of a string. *)
