(** Streaming statistics accumulator (Welford's online algorithm).

    Used by benchmark harnesses and instrumentation counters to summarize
    per-operation costs without retaining samples. *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val total : t -> float
val mean : t -> float
(** 0 when empty. *)

val variance : t -> float
(** Sample variance; 0 with fewer than two samples. *)

val stddev : t -> float
val min : t -> float
(** [infinity] when empty. *)

val max : t -> float
(** [neg_infinity] when empty. *)

val merge : t -> t -> t
(** Combine two accumulators as if all samples were added to one. *)

val pp : Format.formatter -> t -> unit
