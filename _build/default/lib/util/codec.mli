(** Little-endian binary encoding and decoding.

    All on-disk and on-wire formats in this repository are built from these
    primitives.  A {!writer} is a growable byte buffer; a {!reader} walks a
    byte range with bounds checking and reports malformed input with
    {!exception:Truncated} rather than [Invalid_argument], so callers can
    distinguish "corrupt input" from programming errors. *)

exception Truncated of string
(** Raised by readers when the input ends before a complete value. *)

(** {1 Writing} *)

type writer

val writer : ?capacity:int -> unit -> writer
val length : writer -> int
val contents : writer -> Bytes.t
(** Copy of the bytes written so far. *)

val u8 : writer -> int -> unit
val u16 : writer -> int -> unit
val u32 : writer -> int -> unit

val u64 : writer -> int64 -> unit
val int_as_u64 : writer -> int -> unit
(** Native non-negative int written as 8 bytes. *)

val varint : writer -> int -> unit
(** LEB128 varint; accepts any non-negative OCaml int. *)

val raw : writer -> Bytes.t -> pos:int -> len:int -> unit
val raw_string : writer -> string -> unit

val patch_u32 : writer -> at:int -> int -> unit
(** Overwrite 4 bytes previously written at offset [at]. *)

(** {1 Reading} *)

type reader

val reader : ?pos:int -> ?len:int -> Bytes.t -> reader
val pos : reader -> int
val remaining : reader -> int

val get_u8 : reader -> int
val get_u16 : reader -> int
val get_u32 : reader -> int
val get_u64 : reader -> int64
val get_int_as_u64 : reader -> int
val get_varint : reader -> int
val get_raw : reader -> len:int -> Bytes.t
val skip : reader -> int -> unit
