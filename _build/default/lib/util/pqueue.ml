type 'a entry = { value : 'a; seq : int }

type 'a t = {
  compare : 'a -> 'a -> int;
  mutable heap : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create ~compare = { compare; heap = [||]; size = 0; next_seq = 0 }
let length t = t.size
let is_empty t = t.size = 0

let entry_lt t a b =
  let c = t.compare a.value b.value in
  if c <> 0 then c < 0 else a.seq < b.seq

let grow t =
  let cap = Array.length t.heap in
  if t.size = cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let nheap = Array.make ncap t.heap.(0) in
    Array.blit t.heap 0 nheap 0 t.size;
    t.heap <- nheap
  end

let push t v =
  let e = { value = v; seq = t.next_seq } in
  t.next_seq <- t.next_seq + 1;
  if t.size = 0 && Array.length t.heap = 0 then t.heap <- Array.make 16 e;
  grow t;
  t.heap.(t.size) <- e;
  t.size <- t.size + 1;
  (* Sift up. *)
  let i = ref (t.size - 1) in
  while
    !i > 0
    &&
    let parent = (!i - 1) / 2 in
    entry_lt t t.heap.(!i) t.heap.(parent)
  do
    let parent = (!i - 1) / 2 in
    let tmp = t.heap.(!i) in
    t.heap.(!i) <- t.heap.(parent);
    t.heap.(parent) <- tmp;
    i := parent
  done

let peek t = if t.size = 0 then None else Some t.heap.(0).value

let sift_down t =
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < t.size && entry_lt t t.heap.(l) t.heap.(!smallest) then smallest := l;
    if r < t.size && entry_lt t t.heap.(r) t.heap.(!smallest) then smallest := r;
    if !smallest = !i then continue := false
    else begin
      let tmp = t.heap.(!i) in
      t.heap.(!i) <- t.heap.(!smallest);
      t.heap.(!smallest) <- tmp;
      i := !smallest
    end
  done

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.heap.(0) <- t.heap.(t.size);
      sift_down t
    end;
    Some top.value
  end

let pop_exn t =
  match pop t with
  | Some v -> v
  | None -> invalid_arg "Pqueue.pop_exn: empty"

let clear t =
  t.size <- 0;
  t.heap <- [||]

let to_list t =
  let copy =
    {
      compare = t.compare;
      heap = Array.sub t.heap 0 (Stdlib.max t.size 0);
      size = t.size;
      next_seq = t.next_seq;
    }
  in
  let rec drain acc =
    match pop copy with None -> List.rev acc | Some v -> drain (v :: acc)
  in
  drain []
