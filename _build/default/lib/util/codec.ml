exception Truncated of string

type writer = Buffer.t

let writer ?(capacity = 256) () = Buffer.create capacity
let length = Buffer.length
let contents w = Buffer.to_bytes w
let u8 w v = Buffer.add_char w (Char.chr (v land 0xFF))

let u16 w v =
  u8 w v;
  u8 w (v lsr 8)

let u32 w v =
  u16 w v;
  u16 w (v lsr 16)

let u64 w v =
  for i = 0 to 7 do
    u8 w (Int64.to_int (Int64.shift_right_logical v (8 * i)))
  done

let int_as_u64 w v =
  if v < 0 then invalid_arg "Codec.int_as_u64: negative";
  u64 w (Int64.of_int v)

let rec varint w v =
  if v < 0 then invalid_arg "Codec.varint: negative"
  else if v < 0x80 then u8 w v
  else begin
    u8 w (0x80 lor (v land 0x7F));
    varint w (v lsr 7)
  end

let raw w b ~pos ~len = Buffer.add_subbytes w b pos len
let raw_string = Buffer.add_string

(* Buffer has no in-place patching; emulate it by rebuilding.  Patching is
   only used for fixed-size length fields in small headers, so the copy is
   acceptable and keeps the writer type simple. *)
let patch_u32 w ~at v =
  let b = Buffer.to_bytes w in
  if at < 0 || at + 4 > Bytes.length b then invalid_arg "Codec.patch_u32";
  Bytes.set_uint16_le b at (v land 0xFFFF);
  Bytes.set_uint16_le b (at + 2) ((v lsr 16) land 0xFFFF);
  Buffer.clear w;
  Buffer.add_bytes w b

type reader = { buf : Bytes.t; mutable pos : int; limit : int }

let reader ?(pos = 0) ?len buf =
  let len = match len with Some l -> l | None -> Bytes.length buf - pos in
  if pos < 0 || len < 0 || pos + len > Bytes.length buf then
    invalid_arg "Codec.reader";
  { buf; pos; limit = pos + len }

let pos r = r.pos
let remaining r = r.limit - r.pos

let need r n what =
  if remaining r < n then raise (Truncated what)

let get_u8 r =
  need r 1 "u8";
  let v = Char.code (Bytes.unsafe_get r.buf r.pos) in
  r.pos <- r.pos + 1;
  v

let get_u16 r =
  let lo = get_u8 r in
  let hi = get_u8 r in
  lo lor (hi lsl 8)

let get_u32 r =
  let lo = get_u16 r in
  let hi = get_u16 r in
  lo lor (hi lsl 16)

let get_u64 r =
  let v = ref 0L in
  for i = 0 to 7 do
    v := Int64.logor !v (Int64.shift_left (Int64.of_int (get_u8 r)) (8 * i))
  done;
  !v

let get_int_as_u64 r =
  let v = get_u64 r in
  if Int64.compare v 0L < 0 || Int64.compare v (Int64.of_int max_int) > 0 then
    raise (Truncated "int_as_u64: out of int range");
  Int64.to_int v

let get_varint r =
  let rec loop shift acc =
    if shift > 62 then raise (Truncated "varint: too long");
    let b = get_u8 r in
    let acc = acc lor ((b land 0x7F) lsl shift) in
    if b land 0x80 = 0 then acc else loop (shift + 7) acc
  in
  loop 0 0

let get_raw r ~len =
  need r len "raw";
  let b = Bytes.sub r.buf r.pos len in
  r.pos <- r.pos + len;
  b

let skip r n =
  need r n "skip";
  r.pos <- r.pos + n
