(** Mutable binary min-heap priority queue.

    The simulator's event queue and the coherency receiver's pending-record
    queue are built on this.  Ties are broken by insertion order so that
    iteration is deterministic. *)

type 'a t

val create : compare:('a -> 'a -> int) -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Smallest element, without removing it. *)

val pop : 'a t -> 'a option
(** Remove and return the smallest element. *)

val pop_exn : 'a t -> 'a
(** @raise Invalid_argument on an empty queue. *)

val clear : 'a t -> unit

val to_list : 'a t -> 'a list
(** Elements in ascending order; O(n log n), does not modify the queue. *)
