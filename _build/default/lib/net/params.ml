type t = { send_base : float; send_per_byte : float; propagation : float }

let instant = { send_base = 0.0; send_per_byte = 0.0; propagation = 0.0 }

(* Table 2: "page send (TCP/IP)" = 677.0 µs per 8192-byte page.  We split
   that into a fixed per-call cost and a per-byte cost so that small
   coherency messages are cheaper than full pages, as in the prototype. *)
let an1 =
  {
    send_base = 100.0;
    send_per_byte = (677.0 -. 100.0) /. 8192.0;
    propagation = 10.0;
  }

let send_cost p len = p.send_base +. (p.send_per_byte *. float_of_int len)
