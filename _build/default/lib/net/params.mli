(** Network cost parameters.

    [send] blocks the sending process for [send_base + len * send_per_byte]
    microseconds — the cost of the [writev] system call and the protocol
    stack, which is how the paper accounts "Network I/O" at the writer.
    The message is delivered [propagation] µs after the send completes. *)

type t = {
  send_base : float;  (** µs per writev call *)
  send_per_byte : float;  (** µs per byte sent *)
  propagation : float;  (** µs wire/switch delay after send completes *)
}

val instant : t
(** Zero-cost network for unit tests. *)

val an1 : t
(** The AN1 100 Mbit/s network of the paper, calibrated to Table 2: sending
    one 8 KB page over TCP/IP costs 677 µs at the sender. *)

val send_cost : t -> int -> float
(** [send_cost p len] is the sender-side cost in µs of one message. *)
