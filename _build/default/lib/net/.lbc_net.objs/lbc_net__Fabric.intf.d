lib/net/fabric.mli: Lbc_sim Params
