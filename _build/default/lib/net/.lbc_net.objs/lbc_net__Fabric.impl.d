lib/net/fabric.ml: Array Lbc_sim List Params Printf
