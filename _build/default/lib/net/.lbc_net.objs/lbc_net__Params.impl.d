lib/net/params.ml:
