lib/net/params.mli:
