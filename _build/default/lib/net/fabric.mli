(** Simulated network fabric: reliable FIFO point-to-point channels between
    a fixed set of nodes, like the TCP connections of the prototype.

    The fabric is polymorphic in the message type; callers supply a [size]
    function so that costs and traffic statistics reflect the bytes a real
    implementation would move.  Ordering guarantee: messages from one
    sender to one receiver are delivered in send order (TCP); there is no
    ordering across different sender/receiver pairs — exactly the situation
    that forces the paper's sequence-number interlock (Section 3.4). *)

type 'm t

val create :
  ?params:Params.t -> engine:Lbc_sim.Engine.t -> nodes:int -> size:('m -> int) -> unit -> 'm t
(** [params] defaults to {!Params.an1}. *)

val engine : 'm t -> Lbc_sim.Engine.t
val nodes : 'm t -> int
val params : 'm t -> Params.t

val send : 'm t -> src:int -> dst:int -> 'm -> unit
(** Transmit one message.  Must be called from a simulated process; blocks
    the caller for the sender-side cost.  Self-sends are rejected. *)

val broadcast : 'm t -> src:int -> dsts:int list -> 'm -> unit
(** Multicast: one wire transmission reaching every destination (the
    hardware the paper's Section 4.3.1 wishes for).  The sender pays the
    cost of a single send; self and duplicate destinations are ignored. *)

val recv : 'm t -> dst:int -> src:int -> 'm
(** Blocking receive on the channel from [src] to [dst] (one receiver
    thread per peer channel, as in the prototype). *)

val try_recv : 'm t -> dst:int -> src:int -> 'm option

(** {1 Fault injection} *)

val set_drop : 'm t -> src:int -> dst:int -> bool -> unit
(** While set, messages from [src] to [dst] are silently discarded. *)

(** {1 Traffic accounting} *)

val messages_sent : 'm t -> src:int -> int
val bytes_sent : 'm t -> src:int -> int
val total_messages : 'm t -> int
val total_bytes : 'm t -> int
