lib/wal/record.ml: Bytes Codec Crc32 Format Int32 Lbc_util List Printf
