lib/wal/log.mli: Lbc_storage Record
