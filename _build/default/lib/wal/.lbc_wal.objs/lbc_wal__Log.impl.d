lib/wal/log.ml: Bytes Codec Lbc_storage Lbc_util List Printf Record
