lib/wal/record.mli: Bytes Format
