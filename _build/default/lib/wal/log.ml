open Lbc_util

exception Bad_log of string

type t = {
  dev : Lbc_storage.Dev.t;
  mutable head : int;
  mutable tail : int;
  mutable record_count : int;
}

let log_magic = 0x4C42434C (* "LBCL" *)
let version = 1
let header_size = 16

type scan_status = Clean | Torn_at of int * string

let write_header t =
  let w = Codec.writer ~capacity:header_size () in
  Codec.u32 w log_magic;
  Codec.u32 w version;
  Codec.int_as_u64 w t.head;
  let b = Codec.contents w in
  Lbc_storage.Dev.write t.dev ~off:0 b ~pos:0 ~len:(Bytes.length b)

let scan_tail dev ~from =
  (* Walk records until a clean end or torn record; both mark the tail. *)
  let image = Lbc_storage.Dev.snapshot dev in
  let rec loop pos count =
    match Record.decode image ~pos with
    | Record.Txn (_, next) -> loop next (count + 1)
    | Record.End -> (pos, count)
    | Record.Torn _ -> (pos, count)
  in
  loop from 0

let attach dev =
  let size = Lbc_storage.Dev.size dev in
  if size = 0 then begin
    let t = { dev; head = header_size; tail = header_size; record_count = 0 } in
    write_header t;
    Lbc_storage.Dev.sync dev;
    t
  end
  else if size < header_size then raise (Bad_log "short header")
  else begin
    let hdr = Lbc_storage.Dev.read dev ~off:0 ~len:header_size in
    let r = Codec.reader hdr in
    let m = Codec.get_u32 r in
    if m <> log_magic then raise (Bad_log "bad magic");
    let v = Codec.get_u32 r in
    if v <> version then raise (Bad_log (Printf.sprintf "bad version %d" v));
    let head = Codec.get_int_as_u64 r in
    if head < header_size || head > size then raise (Bad_log "bad head offset");
    let tail, count = scan_tail dev ~from:head in
    { dev; head; tail; record_count = count }
  end

let dev t = t.dev
let head t = t.head
let tail t = t.tail
let live_bytes t = t.tail - t.head
let record_count t = t.record_count

let append ?range_header_size t txn =
  let b = Record.encode ?range_header_size txn in
  let off = t.tail in
  Lbc_storage.Dev.write t.dev ~off b ~pos:0 ~len:(Bytes.length b);
  t.tail <- off + Bytes.length b;
  t.record_count <- t.record_count + 1;
  off

let force t = Lbc_storage.Dev.sync t.dev

let set_head t off =
  if off < header_size || off > t.tail then
    invalid_arg (Printf.sprintf "Log.set_head: offset %d out of [%d,%d]"
                   off header_size t.tail);
  t.head <- off;
  write_header t;
  Lbc_storage.Dev.sync t.dev;
  let _, count = scan_tail t.dev ~from:t.head in
  t.record_count <- count

let fold t ?from ~init f =
  let from = match from with Some o -> o | None -> t.head in
  let image = Lbc_storage.Dev.snapshot t.dev in
  let rec loop pos acc =
    if pos >= t.tail then (acc, Clean)
    else
      match Record.decode image ~pos with
      | Record.Txn (txn, next) -> loop next (f acc pos txn)
      | Record.End -> (acc, Clean)
      | Record.Torn why -> (acc, Torn_at (pos, why))
  in
  loop from init

let read_all t =
  let acc, status = fold t ~init:[] (fun acc _ txn -> txn :: acc) in
  (List.rev acc, status)
