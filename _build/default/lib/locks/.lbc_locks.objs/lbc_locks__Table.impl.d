lib/locks/table.ml: Format Hashtbl Lbc_sim Printf Queue
