lib/locks/table.mli: Format
