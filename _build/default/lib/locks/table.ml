type grant = { seqno : int; prev_write_seq : int; last_writer : int }

type msg =
  | Request of { lock : int; requester : int }
  | Forward of { lock : int; requester : int }
  | Token of { lock : int; seqno : int; last_write_seq : int; last_writer : int }

(* Nominal sizes: two small ints for requests, three for a token, plus a
   small header — comparable to the prototype's control messages. *)
let msg_size = function
  | Request _ | Forward _ -> 16
  | Token _ -> 24

let pp_msg ppf = function
  | Request { lock; requester } -> Format.fprintf ppf "Request(l%d<-n%d)" lock requester
  | Forward { lock; requester } -> Format.fprintf ppf "Forward(l%d<-n%d)" lock requester
  | Token { lock; seqno; last_write_seq; last_writer } ->
      Format.fprintf ppf "Token(l%d seq=%d lws=%d lw=%d)" lock seqno
        last_write_seq last_writer

exception Protocol_error of string

type waiter = { iv : grant option Lbc_sim.Ivar.t; mutable cancelled : bool }

type lstate = {
  id : int;
  mutable have_token : bool;
  mutable busy : bool;
  mutable held_seq : int;  (* seqno of the current local holder *)
  mutable seqno : int;  (* valid while we own the token *)
  mutable last_write_seq : int;  (* valid while we own the token *)
  mutable last_writer : int;  (* node of the last writing acquire; -1 if none *)
  mutable pending_remote : int option;  (* node owed our token *)
  mutable requesting : bool;  (* Request sent, Token not yet received *)
  waiters : waiter Queue.t;
  mutable tail : int;  (* manager-side: current end of the waiter chain *)
}

type stats = {
  mutable local_grants : int;
  mutable remote_grants : int;
  mutable tokens_passed : int;
  mutable requests_sent : int;
}

(* Pop waiters until one that has not timed out. *)
let rec next_waiter waiters =
  match Queue.take_opt waiters with
  | Some w when w.cancelled -> next_waiter waiters
  | other -> other

let live_waiters waiters =
  Queue.fold (fun acc w -> if w.cancelled then acc else acc + 1) 0 waiters

type t = {
  node : int;
  nodes : int;
  send : dst:int -> msg -> unit;
  locks : (int, lstate) Hashtbl.t;
  stats : stats;
}

let create ~node ~nodes ~send () =
  if nodes <= 0 || node < 0 || node >= nodes then
    invalid_arg "Table.create: bad node/nodes";
  {
    node;
    nodes;
    send;
    locks = Hashtbl.create 16;
    stats = { local_grants = 0; remote_grants = 0; tokens_passed = 0; requests_sent = 0 };
  }

let node t = t.node
let manager_of t lock = lock mod t.nodes
let stats t = t.stats

let state t lock =
  if lock < 0 then invalid_arg "Table: negative lock id";
  match Hashtbl.find_opt t.locks lock with
  | Some s -> s
  | None ->
      let is_manager = manager_of t lock = t.node in
      let s =
        {
          id = lock;
          have_token = is_manager;
          busy = false;
          held_seq = 0;
          seqno = 0;
          last_write_seq = 0;
          last_writer = -1;
          pending_remote = None;
          requesting = false;
          waiters = Queue.create ();
          tail = manager_of t lock;
        }
      in
      Hashtbl.add t.locks lock s;
      s

let held t lock = (state t lock).busy
let has_token t lock = (state t lock).have_token

(* Grant the token to one local waiter (or return the grant directly). *)
let grant_locally s =
  s.busy <- true;
  s.seqno <- s.seqno + 1;
  s.held_seq <- s.seqno;
  { seqno = s.seqno; prev_write_seq = s.last_write_seq; last_writer = s.last_writer }

let pass_token t s ~to_ =
  if not s.have_token then raise (Protocol_error "passing a token we lack");
  s.have_token <- false;
  t.stats.tokens_passed <- t.stats.tokens_passed + 1;
  t.send ~dst:to_
    (Token
       {
         lock = s.id;
         seqno = s.seqno;
         last_write_seq = s.last_write_seq;
         last_writer = s.last_writer;
       })

let rec request_token t s =
  if not s.requesting then begin
    s.requesting <- true;
    t.stats.requests_sent <- t.stats.requests_sent + 1;
    let mgr = manager_of t s.id in
    if mgr = t.node then
      (* We are the manager: short-circuit the self-send. *)
      handle_request t s.id t.node
    else t.send ~dst:mgr (Request { lock = s.id; requester = t.node })
  end

and handle_request t lock requester =
  let s = state t lock in
  if manager_of t lock <> t.node then
    raise (Protocol_error "Request received by a non-manager");
  let prev = s.tail in
  s.tail <- requester;
  if prev = requester then
    raise (Protocol_error "requester already at queue tail");
  if prev = t.node then handle_forward t lock requester
  else t.send ~dst:prev (Forward { lock; requester })

and handle_forward t lock requester =
  let s = state t lock in
  (match s.pending_remote with
  | Some other ->
      raise
        (Protocol_error
           (Printf.sprintf "two pending token requests (%d, %d)" other requester))
  | None -> ());
  if
    s.have_token && (not s.busy)
    && live_waiters s.waiters = 0
    && not s.requesting
  then pass_token t s ~to_:requester
  else s.pending_remote <- Some requester

let handle_token t lock ~seqno ~last_write_seq ~last_writer =
  let s = state t lock in
  if s.have_token then raise (Protocol_error "token received while owning it");
  s.have_token <- true;
  s.requesting <- false;
  s.seqno <- seqno;
  s.last_write_seq <- last_write_seq;
  s.last_writer <- last_writer;
  match next_waiter s.waiters with
  | Some w ->
      let g = grant_locally s in
      t.stats.remote_grants <- t.stats.remote_grants + 1;
      Lbc_sim.Ivar.fill w.iv (Some g)
  | None -> (
      (* Nobody waits any more; honour a pending forward immediately. *)
      match s.pending_remote with
      | Some r ->
          s.pending_remote <- None;
          pass_token t s ~to_:r
      | None -> ())

let handle t ~src:_ msg =
  match msg with
  | Request { lock; requester } -> handle_request t lock requester
  | Forward { lock; requester } -> handle_forward t lock requester
  | Token { lock; seqno; last_write_seq; last_writer } ->
      handle_token t lock ~seqno ~last_write_seq ~last_writer

let enqueue_waiter t s =
  let w = { iv = Lbc_sim.Ivar.create (); cancelled = false } in
  Queue.add w s.waiters;
  if not s.have_token then request_token t s;
  w

let acquire t lock =
  let s = state t lock in
  if s.have_token && (not s.busy) && live_waiters s.waiters = 0 then begin
    t.stats.local_grants <- t.stats.local_grants + 1;
    grant_locally s
  end
  else begin
    let w = enqueue_waiter t s in
    match Lbc_sim.Ivar.read w.iv with
    | Some g -> g
    | None -> raise (Protocol_error "acquire: waiter cancelled unexpectedly")
  end

let acquire_timeout t lock ~timeout =
  let s = state t lock in
  if s.have_token && (not s.busy) && live_waiters s.waiters = 0 then begin
    t.stats.local_grants <- t.stats.local_grants + 1;
    Some (grant_locally s)
  end
  else begin
    let w = enqueue_waiter t s in
    let engine = Lbc_sim.Proc.engine () in
    Lbc_sim.Engine.schedule engine ~delay:timeout (fun () ->
        if not (Lbc_sim.Ivar.is_filled w.iv) then begin
          w.cancelled <- true;
          Lbc_sim.Ivar.fill w.iv None
        end);
    Lbc_sim.Ivar.read w.iv
  end

let release t lock ~wrote =
  let s = state t lock in
  if not s.busy then raise (Protocol_error "release of a lock not held");
  if wrote then begin
    s.last_write_seq <- s.held_seq;
    s.last_writer <- t.node
  end;
  s.busy <- false;
  match s.pending_remote with
  | Some r ->
      s.pending_remote <- None;
      pass_token t s ~to_:r;
      (* Local waiters must now queue through the manager again. *)
      if live_waiters s.waiters > 0 then request_token t s
  | None -> (
      match next_waiter s.waiters with
      | Some w ->
          let g = grant_locally s in
          t.stats.local_grants <- t.stats.local_grants + 1;
          Lbc_sim.Ivar.fill w.iv (Some g)
      | None -> ())
