(** Twin/diff write detection — the mechanism of multiple-writer DSM
    systems such as Munin and TreadMarks ("Cpy/Cmp" in the paper).

    On the first store to a page the system takes a write fault, copies
    the page (the {e twin}), and enables writing; at commit each dirty
    page is compared against its twin to find the modified words.  The
    paper evaluates this as an analytic lower bound; here it is also a
    working detection backend so the two approaches can be compared
    functionally. *)

type t

val create : page_size:int -> t
(** [page_size] is 8192 in all paper experiments. *)

val page_size : t -> int

val touch : t -> read:(offset:int -> len:int -> Bytes.t) -> offset:int -> len:int -> int
(** Record a store to [offset, offset+len); for each page touched for the
    first time, fetch it with [read] and keep it as the twin.  Returns the
    number of {e new} dirty pages (write faults taken). *)

val dirty_pages : t -> int list
(** Page numbers twinned so far, ascending. *)

val diff :
  t -> read:(offset:int -> len:int -> Bytes.t) -> (int * int) list
(** Compare every dirty page against its twin at word (8-byte)
    granularity, returning modified [(offset, len)] runs, ascending and
    non-adjacent.  This is the "collect updates" step of Cpy/Cmp. *)
