(** Adaptive hybrid protocol selection (paper Section 6: "adaptive hybrid
    approaches may be possible where application behavior can be
    predicted").

    The paper's analysis (Figure 7) gives the decision rule: log-based
    coherency wins while the number of updates per modified page stays
    below [(trap + copy + compare) / per-update-cost].  The selector
    tracks an exponentially weighted average of updates-per-page per
    segment lock and picks the backend for the next transaction
    accordingly. *)

type t

val create : ?alpha:float -> ?per_update_cost:float -> unit -> t
(** [alpha] is the EWMA weight of the newest observation (default 0.3);
    [per_update_cost] defaults to the unordered cost of a 1000-update
    transaction (18.1 µs), giving the paper's breakeven of ~45
    updates/page. *)

val breakeven : t -> float

val choose : t -> lock:int -> Backend.kind
(** Backend to use for the next transaction under [lock].  Segments with
    no history start with [Log] (the paper's sparse-update expectation). *)

val observe : t -> lock:int -> updates:int -> pages:int -> unit
(** Feed back what a committed transaction did. *)

val density : t -> lock:int -> float option
(** Current updates-per-page estimate for a segment. *)
