type kind = Log | Cpy_cmp | Page

let kind_name = function Log -> "Log" | Cpy_cmp -> "Cpy/Cmp" | Page -> "Page"

type stats = {
  mutable write_faults : int;
  mutable pages_twinned : int;
  mutable pages_compared : int;
  mutable pages_shipped : int;
}

let page_size = Lbc_costmodel.Table2.page_size

module Iset = Set.Make (Int)

module Dtxn = struct
  type detection =
    | D_log
    | D_cpy_cmp of (int, Twin.t) Hashtbl.t  (* region -> twins *)
    | D_page of (int, Iset.t ref) Hashtbl.t  (* region -> dirty pages *)

  type t = {
    node : Lbc_core.Node.t;
    inner : Lbc_core.Node.Txn.t;
    detection : detection;
    stats : stats;
  }

  let begin_ node ~kind =
    {
      node;
      inner = Lbc_core.Node.Txn.begin_ node;
      detection =
        (match kind with
        | Log -> D_log
        | Cpy_cmp -> D_cpy_cmp (Hashtbl.create 4)
        | Page -> D_page (Hashtbl.create 4));
      stats =
        { write_faults = 0; pages_twinned = 0; pages_compared = 0; pages_shipped = 0 };
    }

  let kind t =
    match t.detection with D_log -> Log | D_cpy_cmp _ -> Cpy_cmp | D_page _ -> Page

  let stats t = t.stats
  let acquire t lock = Lbc_core.Node.Txn.acquire t.inner lock
  let read t ~region ~offset ~len = Lbc_core.Node.Txn.read t.inner ~region ~offset ~len
  let get_u64 t ~region ~offset = Lbc_core.Node.Txn.get_u64 t.inner ~region ~offset

  let region_of t region = Lbc_rvm.Rvm.region (Lbc_core.Node.rvm t.node) region

  let reader t region ~offset ~len =
    Lbc_rvm.Region.read (region_of t region) ~offset ~len

  let twin_for tbl region =
    match Hashtbl.find_opt tbl region with
    | Some tw -> tw
    | None ->
        let tw = Twin.create ~page_size in
        Hashtbl.add tbl region tw;
        tw

  let pages_for tbl region =
    match Hashtbl.find_opt tbl region with
    | Some s -> s
    | None ->
        let s = ref Iset.empty in
        Hashtbl.add tbl region s;
        s

  (* A store.  Under Log it is an ordinary set_range+store; under the
     page-grained backends it goes straight to the cached image and only
     the fault/dirty bookkeeping records it, as real hardware-detected
     DSM would. *)
  let write t ~region ~offset b =
    match t.detection with
    | D_log -> Lbc_core.Node.Txn.write t.inner ~region ~offset b
    | D_cpy_cmp twins ->
        let tw = twin_for twins region in
        let faults =
          Twin.touch tw ~read:(reader t region) ~offset ~len:(Bytes.length b)
        in
        t.stats.write_faults <- t.stats.write_faults + faults;
        t.stats.pages_twinned <- t.stats.pages_twinned + faults;
        Lbc_rvm.Region.write (region_of t region) ~offset b
    | D_page pages ->
        let s = pages_for pages region in
        let first = offset / page_size
        and last = (offset + Bytes.length b - 1) / page_size in
        for p = first to last do
          if not (Iset.mem p !s) then begin
            t.stats.write_faults <- t.stats.write_faults + 1;
            s := Iset.add p !s
          end
        done;
        Lbc_rvm.Region.write (region_of t region) ~offset b

  let set_u64 t ~region ~offset v =
    let b = Bytes.create 8 in
    Bytes.set_int64_le b 0 v;
    write t ~region ~offset b

  (* Commit: convert the detected updates into set_range declarations so
     the ordinary redo-record path picks the new values out of memory. *)
  let commit t =
    (match t.detection with
    | D_log -> ()
    | D_cpy_cmp twins ->
        Hashtbl.iter
          (fun region tw ->
            t.stats.pages_compared <-
              t.stats.pages_compared + List.length (Twin.dirty_pages tw);
            List.iter
              (fun (offset, len) ->
                Lbc_core.Node.Txn.set_range t.inner ~region ~offset ~len)
              (Twin.diff tw ~read:(reader t region)))
          twins
    | D_page pages ->
        Hashtbl.iter
          (fun region s ->
            let size = Lbc_rvm.Region.size (region_of t region) in
            Iset.iter
              (fun p ->
                let offset = p * page_size in
                let len = min page_size (size - offset) in
                t.stats.pages_shipped <- t.stats.pages_shipped + 1;
                Lbc_core.Node.Txn.set_range t.inner ~region ~offset ~len)
              !s)
          pages);
    Lbc_core.Node.Txn.commit_record t.inner
end
