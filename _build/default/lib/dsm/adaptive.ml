type t = {
  alpha : float;
  breakeven : float;
  densities : (int, float) Hashtbl.t;
}

let create ?(alpha = 0.3) ?per_update_cost () =
  let per_update_cost =
    match per_update_cost with
    | Some c -> c
    | None -> Lbc_costmodel.Model.per_update_cost Lbc_costmodel.Model.Unordered ~nth:1000
  in
  {
    alpha;
    breakeven = Lbc_costmodel.Curves.fig7_standard ~per_update_cost;
    densities = Hashtbl.create 16;
  }

let breakeven t = t.breakeven

let density t ~lock = Hashtbl.find_opt t.densities lock

let choose t ~lock =
  match density t ~lock with
  | Some d when d > t.breakeven -> Backend.Cpy_cmp
  | Some _ | None -> Backend.Log

let observe t ~lock ~updates ~pages =
  if pages > 0 then begin
    let sample = float_of_int updates /. float_of_int pages in
    let next =
      match density t ~lock with
      | None -> sample
      | Some prev -> ((1.0 -. t.alpha) *. prev) +. (t.alpha *. sample)
    in
    Hashtbl.replace t.densities lock next
  end
