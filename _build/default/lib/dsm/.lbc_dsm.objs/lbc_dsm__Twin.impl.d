lib/dsm/twin.ml: Bytes Hashtbl Int64 List
