lib/dsm/adaptive.mli: Backend
