lib/dsm/twin.mli: Bytes
