lib/dsm/adaptive.ml: Backend Hashtbl Lbc_costmodel
