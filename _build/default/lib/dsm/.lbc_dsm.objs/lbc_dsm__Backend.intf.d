lib/dsm/backend.mli: Bytes Lbc_core Lbc_wal
