lib/dsm/backend.ml: Bytes Hashtbl Int Lbc_core Lbc_costmodel Lbc_rvm List Set Twin
