(** Write-detection backends and the transactions that use them.

    {!Dtxn} mirrors the coherency transaction interface but lets the
    caller pick how updates are detected:

    - [Log]: explicit [set_range] calls — log-based coherency, the
      paper's approach.  Delegates directly to [Lbc_core.Node.Txn].
    - [Cpy_cmp]: multiple-writer twin/diff — stores take a simulated
      write fault per page, and commit diffs dirty pages against their
      twins to build the (byte-accurate, word-granular) update ranges.
    - [Page]: page-locking DSM — commit ships every dirty page whole.

    All three feed the same redo record / broadcast machinery, so
    receivers cannot tell them apart; what changes is the detection work
    at the writer and the bytes on the wire — exactly the trade-off the
    paper's Figures 1-4 quantify. *)

type kind = Log | Cpy_cmp | Page

val kind_name : kind -> string

type stats = {
  mutable write_faults : int;  (** first-touch page traps (Cpy_cmp/Page) *)
  mutable pages_twinned : int;
  mutable pages_compared : int;
  mutable pages_shipped : int;  (** whole pages in the record (Page) *)
}

module Dtxn : sig
  type t

  val begin_ : Lbc_core.Node.t -> kind:kind -> t
  val kind : t -> kind
  val acquire : t -> int -> unit
  val write : t -> region:int -> offset:int -> Bytes.t -> unit
  val set_u64 : t -> region:int -> offset:int -> int64 -> unit
  val read : t -> region:int -> offset:int -> len:int -> Bytes.t
  val get_u64 : t -> region:int -> offset:int -> int64

  val commit : t -> Lbc_wal.Record.txn
  (** Detection-specific collection, then the normal commit path. *)

  val stats : t -> stats
end
