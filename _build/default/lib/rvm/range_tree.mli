(** The per-transaction tree of modified ranges built by [set_range].

    RVM stores modified ranges ordered by address and coalesces them so
    that redundant bytes are not written to the log.  The paper (§3.1)
    contrasts two coalescing policies and adds a fast path:

    - {b Standard}: coalesce any adjacent or overlapping ranges (original
      RVM).  More work per call, never logs a byte twice.
    - {b Optimized}: coalesce only ranges that exactly match a previously
      added range (same offset; an equal or shorter length is subsumed).
      This makes repeated modification of the same object cheap — the
      common case for compiler-generated [set_range] calls — at the risk
      of logging overlapping bytes twice.  The paper reports a 5x
      reduction in [set_range] overhead from this change.
    - In both policies, a call whose range starts at or past the end of
      the highest range so far is an {e ordered append} and skips the tree
      search entirely (§3.1's second optimization).

    The {!case} returned by {!add} classifies which path a call took so
    that instrumentation can charge the per-update costs of Figures 5-7. *)

type policy = Standard | Optimized

type case =
  | Ordered_append  (** in address order past the current maximum: no search *)
  | Exact_match  (** range already present (last-range cache or tree hit) *)
  | Extended  (** same offset, longer length: existing range grown *)
  | Merged  (** Standard policy only: merged with overlapping neighbours *)
  | Inserted  (** fresh range after a tree search *)

type t

val create : policy -> t
val policy : t -> policy

val add : t -> offset:int -> len:int -> case
(** Record a modified range.  [len] must be positive, [offset]
    non-negative. *)

val count : t -> int
(** Number of stored ranges. *)

val total_bytes : t -> int
(** Sum of stored range lengths — the bytes that will be logged, including
    any redundancy the Optimized policy lets through. *)

val fold : t -> init:'a -> f:('a -> offset:int -> len:int -> 'a) -> 'a
(** Iterate ranges in ascending address order. *)

val ranges : t -> (int * int) list
(** [(offset, len)] pairs in address order. *)

val mem_byte : t -> int -> bool
(** Is the given byte offset covered by some range?  (For tests.) *)
