(** Recoverable virtual memory — a work-alike of the RVM package the paper
    extends (Satyanarayanan et al., 1994).

    One [t] per node.  Applications map {!Region}s, run transactions that
    declare modified byte ranges with {!set_range} (paper Table 1), and
    commit; commit builds a new-value redo record, optionally forces it to
    the node's log device, and returns it — the {e committed log tail} that
    the coherency layer broadcasts to peers.

    The interface corresponds to the paper's Table 1:
    - [Trans.Init]    — {!begin_txn} (tid allocation)
    - [Trans.Begin]   — {!begin_txn}
    - [Trans.Commit]  — {!commit}
    - [Trans.Acquire] — {!set_lock} ([rvm_setlockid_transaction])
    - [Trans.SetRange]— {!set_range}

    Cost instrumentation: RVM itself is a pure library; simulated-time
    charging is injected through {!instrumentation} so that benchmarks can
    charge the per-update costs of Figures 5-7 while unit tests run the
    same code with no cost model. *)

type t
type txn

type restore_mode =
  | Restore  (** capture old values at [set_range]; [abort] allowed *)
  | No_restore  (** no undo copies; [abort] is an error *)

type commit_mode =
  | Flush  (** force the log before returning (durable commit) *)
  | No_flush  (** lazy commit: buffered log write only *)

(** Cost class of one [set_range] call, per the paper's Figure 5:
    [Redundant] — exact match with a previously added range;
    [Ordered]   — address-ordered call that skips the tree search;
    [Unordered] — full tree search (insert or merge). *)
type set_range_class = Redundant | Ordered | Unordered

type instrumentation = {
  on_set_range : set_range_class -> len:int -> unit;
  on_commit_collect : ranges:int -> bytes:int -> unit;
      (** gathering new values / building iovecs at commit *)
  on_apply : ranges:int -> bytes:int -> unit;
      (** applying a received or replayed record to a region image *)
}

val no_instrumentation : instrumentation

type options = {
  coalesce : Range_tree.policy;
      (** [Optimized] is the paper's modified RVM; [Standard] reproduces
          stock RVM for the Figure 8 ablation. *)
  disk_logging : bool;
      (** when [false], commit skips the log write entirely (the paper
          disables disk logging to isolate coherency costs). *)
  range_header_size : int;  (** on-disk range header size; RVM used 104. *)
  instrumentation : instrumentation;
}

val default_options : options
(** Optimized coalescing, disk logging on, 104-byte headers, no
    instrumentation. *)

exception Txn_error of string
(** Raised on misuse: operations on a dead transaction, abort of a
    [No_restore] transaction, commit of an aborted transaction, etc. *)

val init : ?options:options -> node:int -> log_dev:Lbc_storage.Dev.t -> unit -> t
val node : t -> int
val log : t -> Lbc_wal.Log.t
val options : t -> options

val map_region : t -> id:int -> db:Lbc_storage.Dev.t -> size:int -> Region.t
(** Map a region; raises [Invalid_argument] if the id is already mapped. *)

val region : t -> int -> Region.t
(** @raise Not_found if the region is not mapped. *)

val regions : t -> Region.t list

(** {1 Transactions} *)

val begin_txn : ?restore:restore_mode -> t -> txn
(** Start a transaction.  [restore] defaults to [No_restore] (RVM's
    cheaper mode, sufficient when the application never aborts). *)

val tid : txn -> int

val set_range : txn -> region:int -> offset:int -> len:int -> unit
(** Declare intent to modify [len] bytes at [offset] — must precede the
    actual store, as in RVM. *)

val write : txn -> region:int -> offset:int -> Bytes.t -> unit
(** [set_range] followed by the store itself. *)

val set_u64 : txn -> region:int -> offset:int -> int64 -> unit
(** Transactionally update an 8-byte field (the OO7 update unit). *)

val set_lock : txn -> lock_id:int -> seqno:int -> prev_write_seq:int -> unit
(** [rvm_setlockid_transaction]: tag the transaction's eventual log record
    with a lock acquire (called by the lock package, not applications). *)

val commit : ?mode:commit_mode -> txn -> Lbc_wal.Record.txn
(** Commit: build the redo record from the modified ranges (reading new
    values from region memory), append it to the log if disk logging is
    enabled, force the log under [Flush] (default), and return the record.
    The transaction is dead afterwards. *)

val abort : txn -> unit
(** Undo all modifications using the old-value copies captured by
    [set_range].  Only legal for [Restore] transactions. *)

val is_live : txn -> bool

(** {1 Applying records} *)

val apply_record : t -> Lbc_wal.Record.txn -> unit
(** Apply a record's new-value ranges to the mapped region images — used
    by the coherency receiver for records from peer nodes.  Ranges for
    unmapped regions are ignored (the peer shares only some regions). *)

(** {1 Checkpointing} *)

val truncate : t -> unit
(** Log truncation: flush every mapped region image to its database device
    (synchronously) and trim the whole log.  Correct for a single node; in
    the distributed case logs must be merged first (see [Lbc_core.Merge]),
    which is why the paper's prototype trims offline. *)

val maybe_truncate : t -> high_water:int -> bool
(** Truncate iff the live log exceeds [high_water] bytes; returns whether
    it did.  This is RVM's high-water-mark trigger. *)

(** {1 Statistics} *)

type stats = {
  mutable commits : int;
  mutable aborts : int;
  mutable set_ranges : int;
  mutable redundant_calls : int;
  mutable ordered_calls : int;
  mutable unordered_calls : int;
  mutable ranges_logged : int;
  mutable bytes_logged : int;  (** payload bytes in committed records *)
  mutable log_bytes_written : int;  (** on-disk record bytes incl. headers *)
  mutable records_applied : int;
  mutable bytes_applied : int;
  mutable truncations : int;
}

val stats : t -> stats
