lib/rvm/range_tree.ml: Int List Map
