lib/rvm/rvm.ml: Bytes Hashtbl Lbc_wal List Printf Range_tree Region
