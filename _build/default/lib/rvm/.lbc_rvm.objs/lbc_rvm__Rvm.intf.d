lib/rvm/rvm.mli: Bytes Lbc_storage Lbc_wal Range_tree Region
