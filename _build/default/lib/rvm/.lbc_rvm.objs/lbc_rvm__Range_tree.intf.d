lib/rvm/range_tree.mli:
