lib/rvm/recovery.ml: Bytes Lbc_storage Lbc_wal List
