lib/rvm/region.mli: Bytes Lbc_storage
