lib/rvm/region.ml: Bytes Lbc_storage Printf
