lib/rvm/recovery.mli: Lbc_storage Lbc_wal
