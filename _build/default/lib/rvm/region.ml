type t = { id : int; size : int; db : Lbc_storage.Dev.t; mem : Bytes.t }

let map ~id ~db ~size =
  if size <= 0 then invalid_arg "Region.map: size must be positive";
  let mem = Bytes.make size '\000' in
  let have = min size (Lbc_storage.Dev.size db) in
  if have > 0 then begin
    let init = Lbc_storage.Dev.read db ~off:0 ~len:have in
    Bytes.blit init 0 mem 0 have
  end;
  { id; size; db; mem }

let id t = t.id
let size t = t.size
let db t = t.db

let check t ~offset ~len =
  if offset < 0 || len < 0 || offset + len > t.size then
    invalid_arg
      (Printf.sprintf "Region %d: range [%d,%d) outside size %d" t.id offset
         (offset + len) t.size)

let read t ~offset ~len =
  check t ~offset ~len;
  Bytes.sub t.mem offset len

let write t ~offset b =
  check t ~offset ~len:(Bytes.length b);
  Bytes.blit b 0 t.mem offset (Bytes.length b)

let get_u64 t ~offset =
  check t ~offset ~len:8;
  Bytes.get_int64_le t.mem offset

let set_u64 t ~offset v =
  check t ~offset ~len:8;
  Bytes.set_int64_le t.mem offset v

let unsafe_mem t = t.mem

let reload_from_db t =
  Bytes.fill t.mem 0 t.size '\000';
  let have = min t.size (Lbc_storage.Dev.size t.db) in
  if have > 0 then begin
    let image = Lbc_storage.Dev.read t.db ~off:0 ~len:have in
    Bytes.blit image 0 t.mem 0 have
  end

let flush_to_db t =
  Lbc_storage.Dev.write t.db ~off:0 t.mem ~pos:0 ~len:t.size;
  Lbc_storage.Dev.sync t.db
