(** A mapped recoverable region.

    Following RVM's model, mapping a region copies the whole backing
    database file into virtual memory ([Bytes] here); the application then
    reads and writes the in-memory image directly, and committed new values
    flow to the log and eventually back to the database file.  The paper
    notes this whole-file copy is what limits RVM to small databases — a
    limitation we inherit deliberately. *)

type t

val map : id:int -> db:Lbc_storage.Dev.t -> size:int -> t
(** Map a region of [size] bytes backed by device [db].  Bytes present in
    the stable device image are loaded; the remainder is zero-filled. *)

val id : t -> int
val size : t -> int
val db : t -> Lbc_storage.Dev.t

val read : t -> offset:int -> len:int -> Bytes.t
(** Copy out of the in-memory image. *)

val write : t -> offset:int -> Bytes.t -> unit
(** Blit into the in-memory image (no logging — callers go through a
    transaction's [set_range]). *)

val get_u64 : t -> offset:int -> int64
val set_u64 : t -> offset:int -> int64 -> unit
(** Convenience accessors for 8-byte fields (the OO7 update unit). *)

val unsafe_mem : t -> Bytes.t
(** The live image itself, for zero-copy scans by trusted callers
    (checkpointing, twin/diff comparison). *)

val flush_to_db : t -> unit
(** Write the full in-memory image to the database device and sync it —
    the checkpoint step of log truncation. *)

val reload_from_db : t -> unit
(** Replace the in-memory image with the database device's current
    contents (zero-filling any shortfall) — the resynchronization step
    after a distributed checkpoint. *)
