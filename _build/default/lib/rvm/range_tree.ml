module Imap = Map.Make (Int)

type policy = Standard | Optimized

type case = Ordered_append | Exact_match | Extended | Merged | Inserted

type t = {
  policy : policy;
  mutable map : int Imap.t;  (* offset -> len *)
  mutable stored_bytes : int;
  mutable max_end : int;  (* end of the highest range; 0 when empty *)
  mutable last : (int * int) option;  (* last range touched (cache) *)
}

let create policy =
  { policy; map = Imap.empty; stored_bytes = 0; max_end = 0; last = None }

let policy t = t.policy
let count t = Imap.cardinal t.map
let total_bytes t = t.stored_bytes

let store t ~offset ~len =
  t.map <- Imap.add offset len t.map;
  t.stored_bytes <- t.stored_bytes + len;
  if offset + len > t.max_end then t.max_end <- offset + len;
  t.last <- Some (offset, len)

let replace t ~offset ~old_len ~len =
  t.map <- Imap.add offset len t.map;
  t.stored_bytes <- t.stored_bytes - old_len + len;
  if offset + len > t.max_end then t.max_end <- offset + len;
  t.last <- Some (offset, len)

let remove t ~offset ~len =
  t.map <- Imap.remove offset t.map;
  t.stored_bytes <- t.stored_bytes - len

(* Standard policy: absorb every range adjacent to or overlapping
   [offset, offset+len) and store the union. *)
let add_standard t ~offset ~len =
  let lo = offset and hi = offset + len in
  (* Predecessor that might reach into us. *)
  let merged = ref false in
  let lo', hi' =
    match Imap.find_last_opt (fun o -> o <= lo) t.map with
    | Some (o, l) when o + l >= lo ->
        merged := true;
        remove t ~offset:o ~len:l;
        (o, max hi (o + l))
    | _ -> (lo, hi)
  in
  (* Successors starting inside (or immediately at) the merged span. *)
  let rec absorb hi' =
    match Imap.find_first_opt (fun o -> o > lo') t.map with
    | Some (o, l) when o <= hi' ->
        merged := true;
        remove t ~offset:o ~len:l;
        absorb (max hi' (o + l))
    | _ -> hi'
  in
  let hi' = absorb hi' in
  store t ~offset:lo' ~len:(hi' - lo');
  if !merged then Merged else Inserted

(* Optimized policy: coalesce only exact/extending matches at the same
   offset; other overlaps are stored as separate ranges (possibly logging
   some bytes twice), which is the trade the paper makes for speed. *)
let add_optimized t ~offset ~len =
  match Imap.find_opt offset t.map with
  | Some l when len <= l -> Exact_match
  | Some l ->
      replace t ~offset ~old_len:l ~len;
      Extended
  | None ->
      store t ~offset ~len;
      Inserted

let add t ~offset ~len =
  if len <= 0 then invalid_arg "Range_tree.add: len must be positive";
  if offset < 0 then invalid_arg "Range_tree.add: negative offset";
  (* Last-range cache: repeated modification of the same object. *)
  match t.last with
  | Some (o, l) when o = offset && len <= l -> Exact_match
  | _ ->
      (* Address-ordered call past everything stored: no search.  Under
         Standard, a range starting exactly at [max_end] is adjacent to an
         existing range and must be coalesced, so only a strict gap takes
         the fast path there. *)
      let fast =
        Imap.is_empty t.map
        ||
        match t.policy with
        | Optimized -> offset >= t.max_end
        | Standard -> offset > t.max_end
      in
      if fast then begin
        store t ~offset ~len;
        Ordered_append
      end
      else begin
        match t.policy with
        | Standard -> add_standard t ~offset ~len
        | Optimized -> add_optimized t ~offset ~len
      end

let fold t ~init ~f =
  Imap.fold (fun offset len acc -> f acc ~offset ~len) t.map init

let ranges t = List.rev (fold t ~init:[] ~f:(fun acc ~offset ~len -> (offset, len) :: acc))

(* Linear scan: the Optimized policy may store overlapping ranges, so a
   nearest-predecessor lookup is not sufficient.  Test-only helper. *)
let mem_byte t pos = Imap.exists (fun o l -> o <= pos && pos < o + l) t.map
