(** A collection of named devices — the "storage service" node of the
    paper's client/server configuration (the NFS server holding the
    database file and the per-client log files).

    [crash_all] models a server failure: every device reverts to its
    stable image. *)

type t

val create : ?latency:Latency.t -> unit -> t
(** [latency] is the default profile for devices opened on this store. *)

val open_dev : t -> string -> Dev.t
(** Open (creating if absent) the device with the given name. *)

val find : t -> string -> Dev.t option
val names : t -> string list
(** Sorted device names. *)

val sync_all : t -> unit
val crash_all : t -> unit
