lib/storage/latency.ml:
