lib/storage/latency.mli:
