lib/storage/store.mli: Dev Latency
