lib/storage/dev.ml: Bytes Latency Lbc_sim Printf Queue String
