lib/storage/store.ml: Dev Hashtbl Latency List
