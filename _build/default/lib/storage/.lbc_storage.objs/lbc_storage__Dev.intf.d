lib/storage/dev.mli: Bytes Latency
