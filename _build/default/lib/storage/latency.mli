(** Device latency profiles.

    Costs are charged to the calling simulated process as virtual time.
    The paper disables disk logging for most measurements and re-enables it
    only for Figure 8; the [osdi94_disk] profile is calibrated so that the
    T12-A commit's synchronous log force costs about what Figure 8 shows
    (~50 ms for a ~6 KB log tail). *)

type t = {
  read_base : float;  (** µs per read call *)
  read_per_byte : float;
  write_base : float;  (** µs per buffered write call *)
  write_per_byte : float;
  sync_base : float;  (** µs per sync barrier (seek + rotation) *)
  sync_per_byte : float;  (** µs per byte of dirty data forced by the sync *)
}

val none : t
(** All costs zero: for unit tests and pure functional checks. *)

val osdi94_disk : t
(** Early-1990s SCSI disk as implied by the paper's Figure 8. *)

val nvram : t
(** Battery-backed RAM: the Hagmann-style optimization the paper cites to
    remove synchronous disk writes from the commit path. *)
