type t = {
  read_base : float;
  read_per_byte : float;
  write_base : float;
  write_per_byte : float;
  sync_base : float;
  sync_per_byte : float;
}

let none =
  {
    read_base = 0.0;
    read_per_byte = 0.0;
    write_base = 0.0;
    write_per_byte = 0.0;
    sync_base = 0.0;
    sync_per_byte = 0.0;
  }

let osdi94_disk =
  {
    read_base = 12_000.0;
    read_per_byte = 0.5;
    write_base = 50.0;
    write_per_byte = 0.01;
    sync_base = 45_000.0;
    sync_per_byte = 0.8;
  }

let nvram =
  {
    read_base = 5.0;
    read_per_byte = 0.005;
    write_base = 5.0;
    write_per_byte = 0.005;
    sync_base = 10.0;
    sync_per_byte = 0.001;
  }
