(* Quickstart: a shared persistent store accessed from two nodes.

   Region 0 holds ten 8-byte account balances protected by one segment
   lock.  Each node runs transfer transactions; log-based coherency keeps
   both cached images consistent, and the redo logs make the money
   durable.

   Run with:  dune exec examples/quickstart.exe *)

open Lbc_core

let region = 0
let lock = 0
let accounts = 10

let balance node i = Node.get_u64 node ~region ~offset:(8 * i)

let transfer node ~from_ ~to_ ~amount =
  let txn = Node.Txn.begin_ node in
  Node.Txn.acquire txn lock;
  let a = Node.Txn.get_u64 txn ~region ~offset:(8 * from_) in
  let b = Node.Txn.get_u64 txn ~region ~offset:(8 * to_) in
  if Int64.compare a amount >= 0 then begin
    Node.Txn.set_u64 txn ~region ~offset:(8 * from_) (Int64.sub a amount);
    Node.Txn.set_u64 txn ~region ~offset:(8 * to_) (Int64.add b amount)
  end;
  Node.Txn.commit txn

let () =
  let cluster = Cluster.create ~nodes:2 () in
  Cluster.add_region cluster ~id:region ~size:4096;
  Cluster.map_region_all cluster ~region;

  (* Node 0 seeds every account with 100. *)
  Cluster.spawn cluster ~node:0 (fun node ->
      let txn = Node.Txn.begin_ node in
      Node.Txn.acquire txn lock;
      for i = 0 to accounts - 1 do
        Node.Txn.set_u64 txn ~region ~offset:(8 * i) 100L
      done;
      Node.Txn.commit txn);

  (* Both nodes then shuffle money around concurrently. *)
  let rng = Lbc_util.Rng.create 2026 in
  for n = 0 to 1 do
    let rng = Lbc_util.Rng.split rng in
    Cluster.spawn cluster ~node:n (fun node ->
        Lbc_sim.Proc.sleep 10.0;
        for _ = 1 to 50 do
          let from_ = Lbc_util.Rng.int rng accounts in
          let to_ = Lbc_util.Rng.int rng accounts in
          if from_ <> to_ then
            transfer node ~from_ ~to_ ~amount:(Int64.of_int (Lbc_util.Rng.int rng 40));
          Lbc_sim.Proc.sleep (Lbc_util.Rng.float rng 25.0)
        done)
  done;

  Cluster.run cluster;

  Format.printf "balances after 100 concurrent transfers:@.";
  let total = ref 0L in
  for i = 0 to accounts - 1 do
    let v0 = balance (Cluster.node cluster 0) i in
    let v1 = balance (Cluster.node cluster 1) i in
    assert (Int64.equal v0 v1);
    total := Int64.add !total v0;
    Format.printf "  account %d: %4Ld (identical on both nodes)@." i v0
  done;
  Format.printf "conservation: total = %Ld (expected 1000)@." !total;
  assert (Int64.equal !total 1000L);
  Format.printf "virtual time: %.1f ms; network: %d messages, %d bytes@."
    (Cluster.now cluster /. 1000.0)
    (Cluster.total_messages cluster)
    (Cluster.total_bytes cluster);
  (* The committed state is recoverable from the merged logs alone. *)
  let outcome = Cluster.recover_database cluster in
  Format.printf "recovery replayed %d transactions — money is durable@."
    outcome.Lbc_rvm.Recovery.records_replayed
