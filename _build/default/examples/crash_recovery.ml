(* Crash and recover: the recoverability half of the paper.

   Two clients commit transactions against a shared region; client 0 then
   "crashes" in the middle of a transaction (its updates are in its cache
   but never committed).  We then crash all devices back to their stable
   images and run the distributed recovery pipeline: merge the per-node
   redo logs by lock sequence number and replay them into the database
   file.  The recovered database contains every committed update from
   both nodes — in the right order — and nothing from the torn
   transaction.

   Run with:  dune exec examples/crash_recovery.exe *)

open Lbc_core

let region = 0
let lock = 0

let committed_append node tag =
  let txn = Node.Txn.begin_ node in
  Node.Txn.acquire txn lock;
  (* Slot 0 is a cursor; each transaction appends its tag after it. *)
  let cursor = Int64.to_int (Node.Txn.get_u64 txn ~region ~offset:0) in
  Node.Txn.write txn ~region ~offset:(8 + cursor) (Bytes.of_string tag);
  Node.Txn.set_u64 txn ~region ~offset:0 (Int64.of_int (cursor + String.length tag));
  Node.Txn.commit txn

let () =
  let cluster = Cluster.create ~nodes:2 () in
  Cluster.add_region cluster ~id:region ~size:4096;
  Cluster.map_region_all cluster ~region;
  let step = Lbc_sim.Mailbox.create () in
  Cluster.spawn cluster ~node:0 (fun node ->
      committed_append node "alpha ";
      Lbc_sim.Mailbox.send step ();
      Lbc_sim.Mailbox.recv step;
      committed_append node "gamma ";
      (* ... and then node 0 dies mid-transaction: *)
      let txn = Node.Txn.begin_ node in
      Node.Txn.acquire txn lock;
      Node.Txn.write txn ~region ~offset:2048 (Bytes.of_string "UNCOMMITTED");
      Format.printf "[node 0] crashed with an open transaction@.");
  Cluster.spawn cluster ~node:1 (fun node ->
      Lbc_sim.Mailbox.recv step;
      committed_append node "beta ";
      Lbc_sim.Mailbox.send step ());
  Cluster.run cluster;

  Format.printf "committed history (node 1's cache): %S@."
    (Bytes.to_string (Node.read (Cluster.node cluster 1) ~region ~offset:8 ~len:18));

  (* Power failure: every device reverts to its stable image. *)
  Lbc_storage.Store.crash_all (Cluster.store cluster);
  Format.printf "@.-- power failure: all caches lost, disks at stable state --@.@.";

  (* Recovery: merge the two logs (ordering by lock records) and replay. *)
  (match Cluster.merged_records cluster with
  | Error _ -> failwith "merge failed"
  | Ok records ->
      Format.printf "merged log order:@.";
      List.iter
        (fun (r : Lbc_wal.Record.txn) ->
          let l = List.hd r.Lbc_wal.Record.locks in
          Format.printf "  node %d tid %d  (lock %d seq %d)@."
            r.Lbc_wal.Record.node r.Lbc_wal.Record.tid
            l.Lbc_wal.Record.lock_id l.Lbc_wal.Record.seqno)
        records);
  let outcome = Cluster.recover_database cluster in
  Format.printf "replayed %d committed transactions@."
    outcome.Lbc_rvm.Recovery.records_replayed;

  let dev = Cluster.region_dev cluster region in
  let recovered = Lbc_storage.Dev.read dev ~off:8 ~len:17 in
  Format.printf "recovered history: %S@." (Bytes.to_string recovered);
  assert (Bytes.to_string recovered = "alpha beta gamma ");
  (* The uncommitted write at 2048 never reached the database: the device
     never even grew to cover it. *)
  assert (Lbc_storage.Dev.size dev < 2048);
  Format.printf "uncommitted bytes absent — atomicity held@."
