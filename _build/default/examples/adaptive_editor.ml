(* Adaptive hybrid coherency (the paper's closing conjecture, Section 6):
   "adaptive hybrid approaches may be possible where application behavior
   can be predicted."

   A document editor alternates between sparse edits (a few words here
   and there — log-based coherency territory) and dense rewrites
   (reflowing a whole section — twin/diff territory).  The selector
   watches updates-per-page per segment and picks the detection backend
   for each transaction.

   Run with:  dune exec examples/adaptive_editor.exe *)

open Lbc_core
open Lbc_dsm

let region = 0
let lock = 0
let segment_bytes = 64 * 1024

let () =
  let cluster = Cluster.create ~nodes:2 () in
  Cluster.add_region cluster ~id:region ~size:segment_bytes;
  Cluster.map_region_all cluster ~region;
  let selector = Adaptive.create ~alpha:0.5 () in
  Format.printf "breakeven density: %.0f updates/page@.@."
    (Adaptive.breakeven selector);
  let rng = Lbc_util.Rng.create 31 in

  let run_txn node ~label ~edits =
    let kind = Adaptive.choose selector ~lock in
    let txn = Backend.Dtxn.begin_ node ~kind in
    Backend.Dtxn.acquire txn lock;
    edits txn;
    let record = Backend.Dtxn.commit txn in
    let updates = List.length record.Lbc_wal.Record.ranges in
    let pages = Lbc_oo7.Runner.pages_updated record in
    Adaptive.observe selector ~lock ~updates ~pages;
    Format.printf "%-14s via %-7s: %4d ranges, %5d bytes on %d pages@." label
      (Backend.kind_name kind) updates
      (Lbc_wal.Record.ranges_bytes record)
      pages
  in

  Cluster.spawn cluster ~node:0 (fun node ->
      (* Phase 1: sparse edits — the selector should stay on Log. *)
      for round = 1 to 3 do
        run_txn node
          ~label:(Printf.sprintf "sparse #%d" round)
          ~edits:(fun txn ->
            for _ = 1 to 5 do
              let offset = 8 * Lbc_util.Rng.int rng (segment_bytes / 8) in
              Backend.Dtxn.set_u64 txn ~region ~offset (Lbc_util.Rng.int64 rng)
            done);
        Lbc_sim.Proc.sleep 100.0
      done;
      (* Phase 2: dense rewrites — density shoots past the breakeven and
         the selector flips to twin/diff. *)
      for round = 1 to 3 do
        run_txn node
          ~label:(Printf.sprintf "rewrite #%d" round)
          ~edits:(fun txn ->
            let base = 8192 * Lbc_util.Rng.int rng 4 in
            for w = 0 to 1023 do
              Backend.Dtxn.set_u64 txn ~region ~offset:(base + (8 * w))
                (Lbc_util.Rng.int64 rng)
            done);
        Lbc_sim.Proc.sleep 100.0
      done;
      (* Phase 3: back to sparse — the EWMA decays and Log returns. *)
      for round = 1 to 4 do
        run_txn node
          ~label:(Printf.sprintf "sparse #%d" (round + 3))
          ~edits:(fun txn ->
            Backend.Dtxn.set_u64 txn ~region
              ~offset:(8 * Lbc_util.Rng.int rng (segment_bytes / 8))
              (Lbc_util.Rng.int64 rng));
        Lbc_sim.Proc.sleep 100.0
      done);
  Cluster.run cluster;
  (* Whatever mix of backends ran, the peer converged. *)
  let image n = Node.read (Cluster.node cluster n) ~region ~offset:0 ~len:segment_bytes in
  assert (Bytes.equal (image 0) (image 1));
  Format.printf "@.both caches identical after the mixed workload@.";
  Format.printf "%a@." Report.pp_cluster cluster
