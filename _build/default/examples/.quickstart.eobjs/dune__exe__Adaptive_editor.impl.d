examples/adaptive_editor.ml: Adaptive Backend Bytes Cluster Format Lbc_core Lbc_dsm Lbc_oo7 Lbc_sim Lbc_util Lbc_wal List Node Printf Report
