examples/quickstart.ml: Cluster Format Int64 Lbc_core Lbc_rvm Lbc_sim Lbc_util Node
