examples/crash_recovery.ml: Bytes Cluster Format Int64 Lbc_core Lbc_rvm Lbc_sim Lbc_storage Lbc_wal List Node String
