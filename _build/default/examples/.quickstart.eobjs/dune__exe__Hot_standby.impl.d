examples/hot_standby.ml: Bytes Cluster Format Int64 Lbc_core Lbc_sim Lbc_storage Node
