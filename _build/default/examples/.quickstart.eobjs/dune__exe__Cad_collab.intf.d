examples/cad_collab.mli:
