examples/quickstart.mli:
