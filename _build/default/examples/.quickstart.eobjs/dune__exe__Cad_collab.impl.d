examples/cad_collab.ml: Array Bytes Cluster Config Format Lbc_core Lbc_sim Lbc_util Node
