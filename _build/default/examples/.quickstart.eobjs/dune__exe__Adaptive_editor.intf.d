examples/adaptive_editor.mli:
