(* Collaborative design: the paper's motivating scenario.

   Three engineers share a design of 4 segments (16 KB each), one
   coarse-grained lock per segment.  Edits are fine-grained — a few bytes
   per change — so although the locks are coarse, only the modified bytes
   cross the network ("coarse-grain locks can support fine-grain
   sharing").  The paper's costs are charged as virtual time, so the
   printed timeline is what the AN1 prototype would have seen.

   Run with:  dune exec examples/cad_collab.exe *)

open Lbc_core

let region = 0
let segment_size = 16 * 1024
let segments = 4

let segment_offset s = s * segment_size

(* An "edit": change a handful of small fields inside the segment. *)
let edit node rng ~segment ~edits =
  let txn = Node.Txn.begin_ node in
  Node.Txn.acquire txn segment;
  for _ = 1 to edits do
    let offset = segment_offset segment + (8 * Lbc_util.Rng.int rng (segment_size / 8)) in
    Node.Txn.set_u64 txn ~region ~offset (Lbc_util.Rng.int64 rng)
  done;
  Node.Txn.commit txn

let () =
  let config = { Config.measured with Config.charge_costs = true } in
  let cluster = Cluster.create ~config ~nodes:3 () in
  Cluster.add_region cluster ~id:region ~size:(segments * segment_size);
  Cluster.map_region_all cluster ~region;
  let rng = Lbc_util.Rng.create 7 in
  let names = [| "amy"; "bo"; "cleo" |] in
  for n = 0 to 2 do
    let rng = Lbc_util.Rng.split rng in
    Cluster.spawn cluster ~node:n (fun node ->
        for round = 1 to 8 do
          (* Engineers mostly work in their own segment but sometimes
             touch the shared one (segment 0). *)
          let segment =
            if Lbc_util.Rng.int rng 4 = 0 then 0 else 1 + (n mod (segments - 1))
          in
          edit node rng ~segment ~edits:(1 + Lbc_util.Rng.int rng 5);
          if round mod 4 = 0 then
            Format.printf "[%8.2f ms] %s finished round %d (segment %d)@."
              (Lbc_sim.Proc.now () /. 1000.0)
              names.(n) round segment;
          Lbc_sim.Proc.sleep (Lbc_util.Rng.float rng 2000.0)
        done)
  done;
  Cluster.run cluster;
  Format.printf "@.after %.1f ms of virtual time:@." (Cluster.now cluster /. 1000.0);
  (* All three caches agree on all 64 KB. *)
  let image n =
    Node.read (Cluster.node cluster n) ~region ~offset:0
      ~len:(segments * segment_size)
  in
  assert (Bytes.equal (image 0) (image 1));
  assert (Bytes.equal (image 0) (image 2));
  Format.printf "  all three 64 KB caches identical@.";
  let bytes = Cluster.total_bytes cluster
  and msgs = Cluster.total_messages cluster in
  Format.printf
    "  network: %d messages, %d bytes — vs %d bytes of shared state:@."
    msgs bytes (segments * segment_size);
  Format.printf
    "  fine-grained coherency moved %.1f%% of what page shipping would@."
    (100.0 *. float_of_int bytes /. float_of_int (msgs * 8192));
  for n = 0 to 2 do
    let st = Node.stats (Cluster.node cluster n) in
    Format.printf "  %s: sent %d updates (%d B), %d interlock waits@."
      names.(n) st.Node.updates_sent st.Node.update_bytes_sent
      st.Node.interlock_waits
  done
