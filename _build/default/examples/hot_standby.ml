(* Hot standby by log shipping (the Li & Naughton scenario from the
   paper's related work, built from the same primitives).

   The primary runs all transactions; the standby maps the region and
   simply applies the committed log tails it receives — its cache is a
   warm replica.  When the primary "fails", the standby takes over
   immediately: its cache is current, no recovery pass needed.

   Run with:  dune exec examples/hot_standby.exe *)

open Lbc_core

let region = 0
let lock = 0

let () =
  let cluster = Cluster.create ~nodes:2 () in
  Cluster.add_region cluster ~id:region ~size:8192;
  Cluster.map_region_all cluster ~region;
  let primary_done = Lbc_sim.Mailbox.create () in

  (* Primary: a stream of small committed updates. *)
  Cluster.spawn cluster ~node:0 (fun node ->
      for i = 1 to 100 do
        let txn = Node.Txn.begin_ node in
        Node.Txn.acquire txn lock;
        let offset = 8 * (i mod 64) in
        Node.Txn.set_u64 txn ~region ~offset (Int64.of_int i);
        Node.Txn.set_u64 txn ~region ~offset:512 (Int64.of_int i) (* high-water *);
        Node.Txn.commit txn;
        Lbc_sim.Proc.sleep 50.0
      done;
      Format.printf "[%.1f ms] primary processed 100 transactions, then failed@."
        (Lbc_sim.Proc.now () /. 1000.0);
      Lbc_sim.Mailbox.send primary_done ());

  (* Standby: passive until failover. *)
  Cluster.spawn cluster ~node:1 (fun node ->
      Lbc_sim.Mailbox.recv primary_done;
      let applied = (Node.stats node).Node.records_received in
      let high_water = Node.get_u64 node ~region ~offset:512 in
      Format.printf "[%.1f ms] standby applied %d log tails; high-water %Ld@."
        (Lbc_sim.Proc.now () /. 1000.0) applied high_water;
      assert (Int64.equal high_water 100L);
      (* Failover: the standby can write immediately — it owns fresh data
         and simply acquires the lock. *)
      let txn = Node.Txn.begin_ node in
      Node.Txn.acquire txn lock;
      Node.Txn.set_u64 txn ~region ~offset:512 1000L;
      Node.Txn.commit txn;
      Format.printf "[%.1f ms] standby took over and committed as primary@."
        (Lbc_sim.Proc.now () /. 1000.0));

  Cluster.run cluster;
  Format.printf "@.final high-water on standby: %Ld@."
    (Node.get_u64 (Cluster.node cluster 1) ~region ~offset:512);

  (* The standby's whole history is also durable: merging both logs
     recovers the post-failover state. *)
  ignore (Cluster.recover_database cluster);
  let dev = Cluster.region_dev cluster region in
  let hw = Bytes.get_int64_le (Lbc_storage.Dev.read dev ~off:512 ~len:8) 0 in
  Format.printf "recovered database high-water: %Ld (includes failover write)@." hw;
  assert (Int64.equal hw 1000L)
