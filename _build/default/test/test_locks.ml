(* Tests for the distributed token-lock package. *)

open Lbc_sim
open Lbc_net
open Lbc_locks

let mk_cluster ?(nodes = 3) () =
  let e = Engine.create () in
  let f =
    Fabric.create ~params:Params.instant ~engine:e ~nodes ~size:Table.msg_size ()
  in
  let tables =
    Array.init nodes (fun n ->
        Table.create ~node:n ~nodes
          ~send:(fun ~dst m -> Fabric.send f ~src:n ~dst m)
          ())
  in
  for n = 0 to nodes - 1 do
    for p = 0 to nodes - 1 do
      if p <> n then
        Proc.spawn e ~name:(Printf.sprintf "lockdisp-%d-%d" n p) (fun () ->
            while true do
              let m = Fabric.recv f ~dst:n ~src:p in
              Table.handle tables.(n) ~src:p m
            done)
    done
  done;
  (e, tables)

let check_int = Alcotest.(check int)

(* Lock 0 is managed by node 0, lock 1 by node 1, etc. *)

let test_local_acquire_immediate () =
  let e, tables = mk_cluster () in
  let grants = ref [] in
  Proc.spawn e (fun () ->
      let g1 = Table.acquire tables.(0) 0 in
      Table.release tables.(0) 0 ~wrote:true;
      let g2 = Table.acquire tables.(0) 0 in
      Table.release tables.(0) 0 ~wrote:false;
      let g3 = Table.acquire tables.(0) 0 in
      Table.release tables.(0) 0 ~wrote:false;
      grants := [ g1; g2; g3 ]);
  Engine.run e;
  (match !grants with
  | [ g1; g2; g3 ] ->
      check_int "seq 1" 1 g1.Table.seqno;
      check_int "no writer before" 0 g1.Table.prev_write_seq;
      check_int "seq 2" 2 g2.Table.seqno;
      check_int "write at seq1 visible" 1 g2.Table.prev_write_seq;
      check_int "seq 3" 3 g3.Table.seqno;
      check_int "read release does not advance" 1 g3.Table.prev_write_seq
  | _ -> Alcotest.fail "missing grants");
  check_int "all local" 3 (Table.stats tables.(0)).Table.local_grants;
  check_int "no requests" 0 (Table.stats tables.(0)).Table.requests_sent

let test_remote_acquire_moves_token () =
  let e, tables = mk_cluster () in
  let got = ref None in
  Proc.spawn e (fun () ->
      let g = Table.acquire tables.(1) 0 in
      got := Some g.Table.seqno;
      Table.release tables.(1) 0 ~wrote:false);
  Engine.run e;
  Alcotest.(check (option int)) "granted remotely" (Some 1) !got;
  Alcotest.(check bool) "token moved" true (Table.has_token tables.(1) 0);
  Alcotest.(check bool) "manager lost token" false (Table.has_token tables.(0) 0);
  check_int "one remote grant" 1 (Table.stats tables.(1)).Table.remote_grants

let test_mutual_exclusion () =
  let e, tables = mk_cluster () in
  let in_cs = ref false and violations = ref 0 and entries = ref 0 in
  let worker n =
    Proc.spawn e ~name:(Printf.sprintf "worker%d" n) (fun () ->
        for _ = 1 to 10 do
          ignore (Table.acquire tables.(n) 5);
          if !in_cs then incr violations;
          in_cs := true;
          incr entries;
          Proc.sleep 3.0;
          in_cs := false;
          Table.release tables.(n) 5 ~wrote:true;
          Proc.sleep 1.0
        done)
  in
  worker 0; worker 1; worker 2;
  Engine.run e;
  check_int "no violations" 0 !violations;
  check_int "all entered" 30 !entries

let test_seqnos_total_order () =
  let e, tables = mk_cluster () in
  let seqs = ref [] in
  let worker n =
    Proc.spawn e (fun () ->
        for _ = 1 to 7 do
          let g = Table.acquire tables.(n) 2 in
          seqs := g.Table.seqno :: !seqs;
          Proc.sleep 2.0;
          Table.release tables.(n) 2 ~wrote:(n = 0);
          Proc.sleep 2.0
        done)
  in
  worker 0; worker 1; worker 2;
  Engine.run e;
  let sorted = List.sort compare !seqs in
  Alcotest.(check (list int)) "seqnos are 1..21 each exactly once"
    (List.init 21 (fun i -> i + 1))
    sorted

let test_prev_write_seq_tracks_writers () =
  let e, tables = mk_cluster () in
  let observed = ref [] in
  Proc.spawn e (fun () ->
      (* Node 0 writes (seq 1), node 1 reads (seq 2), node 2 must still see
         prev_write_seq = 1. *)
      let g0 = Table.acquire tables.(0) 0 in
      Table.release tables.(0) 0 ~wrote:true;
      Proc.spawn (Proc.engine ()) (fun () ->
          let g1 = Table.acquire tables.(1) 0 in
          Table.release tables.(1) 0 ~wrote:false;
          Proc.spawn (Proc.engine ()) (fun () ->
              let g2 = Table.acquire tables.(2) 0 in
              Table.release tables.(2) 0 ~wrote:false;
              observed := [ g0; g1; g2 ]));
      ());
  Engine.run e;
  match !observed with
  | [ g0; g1; g2 ] ->
      check_int "writer saw none" 0 g0.Table.prev_write_seq;
      check_int "reader sees write 1" 1 g1.Table.prev_write_seq;
      check_int "second reader still sees write 1" 1 g2.Table.prev_write_seq;
      check_int "seqno 3" 3 g2.Table.seqno
  | _ -> Alcotest.fail "missing grants"

let test_local_waiters_fifo () =
  let e, tables = mk_cluster () in
  let order = ref [] in
  Proc.spawn e ~name:"holder" (fun () ->
      ignore (Table.acquire tables.(0) 0);
      Proc.sleep 10.0;
      Table.release tables.(0) 0 ~wrote:false);
  for i = 1 to 3 do
    Proc.spawn e ~name:(Printf.sprintf "waiter%d" i) (fun () ->
        Proc.sleep (float_of_int i);
        ignore (Table.acquire tables.(0) 0);
        order := i :: !order;
        Table.release tables.(0) 0 ~wrote:false)
  done;
  Engine.run e;
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3 ] (List.rev !order)

let test_token_cached_after_remote_grant () =
  let e, tables = mk_cluster () in
  Proc.spawn e (fun () ->
      ignore (Table.acquire tables.(2) 0);
      Table.release tables.(2) 0 ~wrote:false;
      (* Second acquire needs no communication: token is cached. *)
      ignore (Table.acquire tables.(2) 0);
      Table.release tables.(2) 0 ~wrote:false);
  Engine.run e;
  let st = Table.stats tables.(2) in
  check_int "one request only" 1 st.Table.requests_sent;
  check_int "one remote grant" 1 st.Table.remote_grants;
  check_int "one local grant" 1 st.Table.local_grants

let test_release_without_hold () =
  let _, tables = mk_cluster () in
  Alcotest.(check bool) "raises" true
    (try Table.release tables.(0) 0 ~wrote:false; false
     with Table.Protocol_error _ -> true)

let test_distinct_locks_independent () =
  let e, tables = mk_cluster () in
  let concurrent = ref 0 and max_concurrent = ref 0 in
  let worker n lock =
    Proc.spawn e (fun () ->
        ignore (Table.acquire tables.(n) lock);
        incr concurrent;
        if !concurrent > !max_concurrent then max_concurrent := !concurrent;
        Proc.sleep 10.0;
        decr concurrent;
        Table.release tables.(n) lock ~wrote:false)
  in
  worker 0 10;
  worker 1 11;
  worker 2 12;
  Engine.run e;
  check_int "all three held simultaneously" 3 !max_concurrent

let test_stress_random_contention () =
  (* Heavier randomized schedule; checks mutual exclusion per lock and
     that every acquire eventually succeeds (the run terminates). *)
  let nodes = 4 in
  let e = Engine.create () in
  let f =
    Fabric.create ~params:Params.an1 ~engine:e ~nodes ~size:Table.msg_size ()
  in
  let tables =
    Array.init nodes (fun n ->
        Table.create ~node:n ~nodes
          ~send:(fun ~dst m -> Fabric.send f ~src:n ~dst m)
          ())
  in
  for n = 0 to nodes - 1 do
    for p = 0 to nodes - 1 do
      if p <> n then
        Proc.spawn e (fun () ->
            while true do
              let m = Fabric.recv f ~dst:n ~src:p in
              Table.handle tables.(n) ~src:p m
            done)
    done
  done;
  let rng = Lbc_util.Rng.create 2024 in
  let holders = Array.make 3 (-1) in
  let completed = ref 0 in
  for n = 0 to nodes - 1 do
    let rng = Lbc_util.Rng.split rng in
    Proc.spawn e (fun () ->
        for _ = 1 to 25 do
          let lock = Lbc_util.Rng.int rng 3 in
          ignore (Table.acquire tables.(n) lock);
          if holders.(lock) <> -1 then
            Alcotest.failf "lock %d already held by %d" lock holders.(lock);
          holders.(lock) <- n;
          Proc.sleep (Lbc_util.Rng.float rng 50.0);
          holders.(lock) <- -1;
          Table.release tables.(n) lock ~wrote:(Lbc_util.Rng.bool rng);
          incr completed;
          Proc.sleep (Lbc_util.Rng.float rng 20.0)
        done)
  done;
  Engine.run e;
  check_int "all iterations completed" 100 !completed

let test_acquire_timeout_expires () =
  let e, tables = mk_cluster () in
  let outcome = ref (Some { Table.seqno = -1; prev_write_seq = -1; last_writer = -1 }) in
  Proc.spawn e ~name:"holder" (fun () ->
      ignore (Table.acquire tables.(0) 0);
      Proc.sleep 1000.0;
      Table.release tables.(0) 0 ~wrote:false);
  Proc.spawn e ~name:"impatient" (fun () ->
      Proc.sleep 1.0;
      outcome := Table.acquire_timeout tables.(1) 0 ~timeout:100.0);
  Engine.run e;
  Alcotest.(check bool) "timed out" true (!outcome = None);
  (* The token eventually arrives anyway and is cached, not lost. *)
  Alcotest.(check bool) "token cached after late arrival" true
    (Table.has_token tables.(1) 0)

let test_acquire_timeout_granted_in_time () =
  let e, tables = mk_cluster () in
  let outcome = ref None in
  Proc.spawn e (fun () ->
      ignore (Table.acquire tables.(0) 0);
      Proc.sleep 50.0;
      Table.release tables.(0) 0 ~wrote:false);
  Proc.spawn e (fun () ->
      Proc.sleep 1.0;
      outcome := Table.acquire_timeout tables.(1) 0 ~timeout:10_000.0);
  Engine.run e;
  Alcotest.(check bool) "granted" true (Option.is_some !outcome)

let test_timeout_waiter_does_not_capture_grant () =
  (* A cancelled waiter must be skipped; the next live waiter gets the
     lock. *)
  let e, tables = mk_cluster () in
  let got = ref [] in
  Proc.spawn e ~name:"holder" (fun () ->
      ignore (Table.acquire tables.(0) 0);
      Proc.sleep 500.0;
      Table.release tables.(0) 0 ~wrote:false);
  Proc.spawn e ~name:"quitter" (fun () ->
      Proc.sleep 1.0;
      match Table.acquire_timeout tables.(0) 0 ~timeout:50.0 with
      | None -> got := "quitter-timeout" :: !got
      | Some _ -> got := "quitter-granted" :: !got);
  Proc.spawn e ~name:"patient" (fun () ->
      Proc.sleep 2.0;
      ignore (Table.acquire tables.(0) 0);
      got := "patient-granted" :: !got;
      Table.release tables.(0) 0 ~wrote:false);
  Engine.run e;
  Alcotest.(check (list string)) "order"
    [ "quitter-timeout"; "patient-granted" ]
    (List.rev !got)

let test_deadlock_broken_by_timeout () =
  (* Classic AB/BA deadlock; node 1 times out, releases, retries. *)
  let e, tables = mk_cluster () in
  let done_ = ref 0 in
  Proc.spawn e ~name:"A" (fun () ->
      ignore (Table.acquire tables.(0) 0);
      Proc.sleep 20.0;
      (* A waits for lock 1 indefinitely; it must eventually win. *)
      ignore (Table.acquire tables.(0) 1);
      Table.release tables.(0) 1 ~wrote:false;
      Table.release tables.(0) 0 ~wrote:false;
      incr done_);
  Proc.spawn e ~name:"B" (fun () ->
      ignore (Table.acquire tables.(1) 1);
      Proc.sleep 20.0;
      (match Table.acquire_timeout tables.(1) 0 ~timeout:200.0 with
      | Some _ ->
          Table.release tables.(1) 0 ~wrote:false;
          Table.release tables.(1) 1 ~wrote:false
      | None ->
          (* Deadlock broken: back off completely, retry later. *)
          Table.release tables.(1) 1 ~wrote:false;
          Proc.sleep 500.0;
          ignore (Table.acquire tables.(1) 1);
          ignore (Table.acquire tables.(1) 0);
          Table.release tables.(1) 0 ~wrote:false;
          Table.release tables.(1) 1 ~wrote:false);
      incr done_);
  Engine.run e;
  Alcotest.(check int) "both completed" 2 !done_

let suites =
  [
    ( "locks.table",
      [
        Alcotest.test_case "local acquire immediate" `Quick
          test_local_acquire_immediate;
        Alcotest.test_case "remote acquire moves token" `Quick
          test_remote_acquire_moves_token;
        Alcotest.test_case "mutual exclusion" `Quick test_mutual_exclusion;
        Alcotest.test_case "seqnos total order" `Quick test_seqnos_total_order;
        Alcotest.test_case "prev_write_seq" `Quick
          test_prev_write_seq_tracks_writers;
        Alcotest.test_case "local waiters fifo" `Quick test_local_waiters_fifo;
        Alcotest.test_case "token cached" `Quick
          test_token_cached_after_remote_grant;
        Alcotest.test_case "release without hold" `Quick
          test_release_without_hold;
        Alcotest.test_case "distinct locks independent" `Quick
          test_distinct_locks_independent;
        Alcotest.test_case "stress random contention" `Quick
          test_stress_random_contention;
      ] );
    ( "locks.timeout",
      [
        Alcotest.test_case "timeout expires" `Quick test_acquire_timeout_expires;
        Alcotest.test_case "granted in time" `Quick
          test_acquire_timeout_granted_in_time;
        Alcotest.test_case "cancelled waiter skipped" `Quick
          test_timeout_waiter_does_not_capture_grant;
        Alcotest.test_case "deadlock broken" `Quick test_deadlock_broken_by_timeout;
      ] );
  ]
