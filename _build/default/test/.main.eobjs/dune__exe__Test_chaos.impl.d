test/test_chaos.ml: Alcotest Bytes Cluster Config Lbc_core Lbc_sim Lbc_storage Lbc_util List Node QCheck QCheck_alcotest
