test/test_oo7.ml: Alcotest Builder Bytes Cluster Database Int64 Lbc_core Lbc_costmodel Lbc_oo7 Lbc_pheap Lbc_rvm Lbc_util List Node Operations Option Printf Queries Runner Schema Traversal
