test/test_wal.ml: Alcotest Bytes Char Dev Lbc_storage Lbc_wal List Log QCheck QCheck_alcotest Record
