test/test_pheap.ml: Alcotest Array Avl Bytes Heap Iavl Int Int64 Layout Lbc_pheap List Printf QCheck QCheck_alcotest Set
