test/test_dsm.ml: Adaptive Alcotest Array Backend Bytes Cluster Database Lbc_core Lbc_dsm Lbc_oo7 Lbc_pheap Lbc_wal List Node Option Printf QCheck QCheck_alcotest Runner Schema String Traversal Twin
