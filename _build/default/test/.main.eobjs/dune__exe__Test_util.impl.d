test/test_util.ml: Alcotest Array Bytes Char Codec Crc32 Fun Gen Int Lbc_util List Pqueue QCheck QCheck_alcotest Rng Stats String
