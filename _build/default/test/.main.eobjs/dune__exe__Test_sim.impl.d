test/test_sim.ml: Alcotest Condvar Engine Ivar Lbc_sim List Mailbox Proc
