test/main.ml: Alcotest List Test_chaos Test_core Test_dsm Test_locks Test_net Test_oo7 Test_pheap Test_rvm Test_sim Test_storage Test_util Test_wal
