test/main.mli:
