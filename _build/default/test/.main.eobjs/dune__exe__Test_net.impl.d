test/test_net.ml: Alcotest Engine Fabric Lbc_net Lbc_sim List Params Proc String
