test/test_rvm.ml: Alcotest Array Bytes Dev Lbc_rvm Lbc_storage Lbc_wal List Printf QCheck QCheck_alcotest Range_tree Recovery Region Rvm
