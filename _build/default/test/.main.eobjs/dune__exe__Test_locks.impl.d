test/test_locks.ml: Alcotest Array Engine Fabric Lbc_locks Lbc_net Lbc_sim Lbc_util List Option Params Printf Proc Table
