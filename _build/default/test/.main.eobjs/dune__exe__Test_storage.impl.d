test/test_storage.ml: Alcotest Bytes Dev Engine Gen Latency Lbc_sim Lbc_storage List Proc QCheck QCheck_alcotest Store
