(* Tests for the persistent heap: layouts, allocator, AVL index. *)

open Lbc_pheap

let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Layout *)

let test_layout_offsets () =
  let l = Layout.make [ ("id", 8); ("date", 8); ("conns", 72) ] in
  check_int "id at 0" 0 (Layout.offset l "id");
  check_int "date at 8" 8 (Layout.offset l "date");
  check_int "conns at 16" 16 (Layout.offset l "conns");
  check_int "size" 88 (Layout.size l);
  Alcotest.(check (list string)) "fields" [ "id"; "date"; "conns" ]
    (Layout.fields l)

let test_layout_padding () =
  let l = Layout.make ~pad_to:200 [ ("id", 8) ] in
  check_int "padded size" 200 (Layout.size l)

let test_layout_errors () =
  Alcotest.(check bool) "duplicate field" true
    (try ignore (Layout.make [ ("a", 8); ("a", 8) ]); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "pad too small" true
    (try ignore (Layout.make ~pad_to:4 [ ("a", 8) ]); false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Heap *)

let fresh_heap ?(size = 4096) () =
  let image = Bytes.make size '\000' in
  (Heap.of_bytes image, image)

let test_heap_alloc_bump () =
  let h, _ = fresh_heap () in
  let a = Heap.alloc h 100 in
  let b = Heap.alloc h 50 in
  check_int "first at data start" Heap.data_start a;
  check_int "bump" (Heap.data_start + 100) b;
  check_int "frontier" (Heap.data_start + 150) (Heap.allocated h)

let test_heap_alloc_exhaustion () =
  let h, _ = fresh_heap ~size:64 () in
  Alcotest.(check bool) "heap full" true
    (try ignore (Heap.alloc h 1000); false with Heap.Heap_error _ -> true)

let test_heap_u64_roundtrip () =
  let h, _ = fresh_heap () in
  let a = Heap.alloc h 16 in
  Heap.set_u64 h a 0xDEADBEEFL;
  Alcotest.(check int64) "u64" 0xDEADBEEFL (Heap.get_u64 h a)

let test_heap_allocator_is_persistent () =
  (* The allocation pointer lives in the image: re-attaching sees it. *)
  let h, image = fresh_heap () in
  ignore (Heap.alloc h 123);
  let h' = Heap.of_bytes image in
  check_int "frontier persisted" (Heap.data_start + 123) (Heap.allocated h')

let test_heap_rejects_garbage () =
  let image = Bytes.make 64 'x' in
  Alcotest.(check bool) "bad magic" true
    (try ignore (Heap.of_bytes image); false with Heap.Heap_error _ -> true)

let test_heap_field_access () =
  let l = Layout.make [ ("id", 8); ("x", 8) ] in
  let h, _ = fresh_heap () in
  let a = Heap.alloc h (Layout.size l) in
  Heap.set_field h l ~addr:a "x" 42;
  check_int "field" 42 (Heap.get_field h l ~addr:a "x");
  check_int "other field untouched" 0 (Heap.get_field h l ~addr:a "id")

(* ------------------------------------------------------------------ *)
(* AVL index *)

let fresh_index ?(size = 1 lsl 20) () =
  let h, _ = fresh_heap ~size () in
  let slots = Heap.alloc h Avl.slots_size in
  Avl.attach h ~slots

let k i = (Int64.of_int i, 0L)

let test_avl_insert_contains () =
  let t = fresh_index () in
  Alcotest.(check bool) "insert" true (Avl.insert t (k 5));
  Alcotest.(check bool) "insert" true (Avl.insert t (k 3));
  Alcotest.(check bool) "duplicate" false (Avl.insert t (k 5));
  Alcotest.(check bool) "contains 3" true (Avl.contains t (k 3));
  Alcotest.(check bool) "contains 5" true (Avl.contains t (k 5));
  Alcotest.(check bool) "not 4" false (Avl.contains t (k 4));
  check_int "cardinal" 2 (Avl.cardinal t)

let test_avl_sorted_fold () =
  let t = fresh_index () in
  List.iter (fun i -> ignore (Avl.insert t (k i))) [ 5; 1; 9; 3; 7 ];
  let keys = List.rev (Avl.fold t ~init:[] ~f:(fun acc (hi, _) -> hi :: acc)) in
  Alcotest.(check (list int64)) "sorted" [ 1L; 3L; 5L; 7L; 9L ] keys;
  Alcotest.(check (option (pair int64 int64))) "min" (Some (1L, 0L)) (Avl.min_key t)

let test_avl_delete () =
  let t = fresh_index () in
  List.iter (fun i -> ignore (Avl.insert t (k i))) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check bool) "delete 3" true (Avl.delete t (k 3));
  Alcotest.(check bool) "already gone" false (Avl.delete t (k 3));
  Alcotest.(check bool) "not contains" false (Avl.contains t (k 3));
  check_int "cardinal" 4 (Avl.cardinal t);
  Avl.check_invariants t

let test_avl_balanced_height () =
  let t = fresh_index () in
  for i = 1 to 1024 do
    ignore (Avl.insert t (k i))
  done;
  Avl.check_invariants t;
  Alcotest.(check bool)
    (Printf.sprintf "height %d <= 1.44 log2 n" (Avl.height t))
    true
    (Avl.height t <= 15)

let test_avl_free_list_reuse () =
  (* delete/insert churn must not grow the heap once the free list is
     primed (the T3 traversal depends on this). *)
  let t = fresh_index () in
  for round = 0 to 20 do
    for i = 1 to 100 do
      if round > 0 then ignore (Avl.delete t (k i));
      ignore (Avl.insert t (k (i + (round * 1000))));
      ignore (Avl.delete t (k (i + (round * 1000))));
      ignore (Avl.insert t (k i))
    done
  done;
  Avl.check_invariants t;
  check_int "cardinal stable" 100 (Avl.cardinal t)

let test_avl_replace_key_in_place () =
  let t = fresh_index () in
  List.iter (fun i -> ignore (Avl.insert t (k (10 * i)))) [ 1; 2; 3 ];
  (* 20 -> 25 stays between 10 and 30. *)
  Alcotest.(check bool) "in place" true
    (Avl.replace_key t ~old_key:(k 20) ~new_key:(k 25) = Avl.In_place);
  Alcotest.(check bool) "new key present" true (Avl.contains t (k 25));
  Alcotest.(check bool) "old key gone" false (Avl.contains t (k 20));
  Avl.check_invariants t

let test_avl_replace_key_reinserts () =
  let t = fresh_index () in
  List.iter (fun i -> ignore (Avl.insert t (k i))) [ 10; 20; 30; 40 ];
  (* 10 -> 35 must relocate past 20 and 30. *)
  Alcotest.(check bool) "reinserted" true
    (Avl.replace_key t ~old_key:(k 10) ~new_key:(k 35) = Avl.Reinserted);
  let keys = List.rev (Avl.fold t ~init:[] ~f:(fun acc (hi, _) -> hi :: acc)) in
  Alcotest.(check (list int64)) "order maintained" [ 20L; 30L; 35L; 40L ] keys;
  Avl.check_invariants t

let test_avl_replace_key_missing () =
  let t = fresh_index () in
  ignore (Avl.insert t (k 1));
  Alcotest.(check bool) "missing old key" true
    (Avl.replace_key t ~old_key:(k 99) ~new_key:(k 100) = Avl.Not_found)

let test_avl_composite_key_ordering () =
  let t = fresh_index () in
  ignore (Avl.insert t (5L, 10L));
  ignore (Avl.insert t (5L, 2L));
  ignore (Avl.insert t (4L, 99L));
  let keys = List.rev (Avl.fold t ~init:[] ~f:(fun acc key -> key :: acc)) in
  Alcotest.(check (list (pair int64 int64)))
    "secondary breaks ties"
    [ (4L, 99L); (5L, 2L); (5L, 10L) ]
    keys

let prop_avl_matches_set_model =
  QCheck.Test.make ~name:"avl matches Set model under random ops" ~count:120
    (QCheck.make
       QCheck.Gen.(list_size (1 -- 200) (pair bool (int_bound 50))))
    (fun ops ->
      let t = fresh_index () in
      let module Iset = Set.Make (Int) in
      let model = ref Iset.empty in
      List.iter
        (fun (ins, i) ->
          if ins then begin
            let added = Avl.insert t (k i) in
            let expected = not (Iset.mem i !model) in
            if added <> expected then failwith "insert result mismatch";
            model := Iset.add i !model
          end
          else begin
            let removed = Avl.delete t (k i) in
            let expected = Iset.mem i !model in
            if removed <> expected then failwith "delete result mismatch";
            model := Iset.remove i !model
          end)
        ops;
      Avl.check_invariants t;
      let keys =
        List.rev (Avl.fold t ~init:[] ~f:(fun acc (hi, _) -> Int64.to_int hi :: acc))
      in
      keys = Iset.elements !model && Avl.cardinal t = Iset.cardinal !model)

let test_avl_heap_bounded_by_free_list () =
  let image = Bytes.make (1 lsl 16) '\000' in
  let h = Heap.of_bytes image in
  let slots = Heap.alloc h Avl.slots_size in
  let t = Avl.attach h ~slots in
  for i = 1 to 50 do
    ignore (Avl.insert t (k i))
  done;
  let frontier = Heap.allocated h in
  (* Steady-state churn: every insert reuses a freed node. *)
  for i = 1 to 500 do
    ignore (Avl.delete t (k (((i - 1) mod 50) + 1)));
    ignore (Avl.insert t (k (((i - 1) mod 50) + 1)))
  done;
  check_int "no heap growth" frontier (Heap.allocated h)

(* ------------------------------------------------------------------ *)
(* Indirect-key AVL (Iavl): entries whose keys live outside the tree *)

(* A little entry table in the heap: each entry is an 8-byte date at a
   fixed address; the index orders entries by (date, address). *)
let fresh_iavl ?(entries = 64) () =
  let image = Bytes.make (1 lsl 18) '\000' in
  let h = Heap.of_bytes image in
  let slots = Heap.alloc h Iavl.slots_size in
  let addrs = Array.init entries (fun _ -> Heap.alloc h 8) in
  let key_of addr = (Heap.get_u64 h addr, Int64.of_int addr) in
  let t = Iavl.attach h ~slots ~key_of in
  let set_date i v = Heap.set_u64 h addrs.(i) (Int64.of_int v) in
  (t, addrs, set_date)

let test_iavl_orders_by_indirect_key () =
  let t, addrs, set_date = fresh_iavl ~entries:4 () in
  set_date 0 30;
  set_date 1 10;
  set_date 2 20;
  set_date 3 20;
  Array.iter (fun a -> ignore (Iavl.insert t a)) addrs;
  let order = List.rev (Iavl.fold t ~init:[] ~f:(fun acc a -> a :: acc)) in
  (* dates 10, 20, 20 (tie by address), 30 *)
  Alcotest.(check (list int)) "ordered by (date, addr)"
    [ addrs.(1); addrs.(2); addrs.(3); addrs.(0) ]
    order;
  Iavl.check_invariants t

let test_iavl_update_in_place () =
  let t, addrs, set_date = fresh_iavl ~entries:3 () in
  set_date 0 10;
  set_date 1 20;
  set_date 2 30;
  Array.iter (fun a -> ignore (Iavl.insert t a)) addrs;
  (* 20 -> 25 keeps position: no restructuring. *)
  let outcome =
    Iavl.update t addrs.(1) ~new_key:(25L, Int64.of_int addrs.(1))
      ~set:(fun () -> set_date 1 25)
  in
  Alcotest.(check bool) "in place" true (outcome = Iavl.In_place);
  Iavl.check_invariants t;
  Alcotest.(check bool) "still findable" true (Iavl.contains t addrs.(1))

let test_iavl_update_relocates () =
  let t, addrs, set_date = fresh_iavl ~entries:3 () in
  set_date 0 10;
  set_date 1 20;
  set_date 2 30;
  Array.iter (fun a -> ignore (Iavl.insert t a)) addrs;
  (* 10 -> 99 must move past both others. *)
  let outcome =
    Iavl.update t addrs.(0) ~new_key:(99L, Int64.of_int addrs.(0))
      ~set:(fun () -> set_date 0 99)
  in
  Alcotest.(check bool) "relocated" true (outcome = Iavl.Relocated);
  let order = List.rev (Iavl.fold t ~init:[] ~f:(fun acc a -> a :: acc)) in
  Alcotest.(check (list int)) "new order"
    [ addrs.(1); addrs.(2); addrs.(0) ]
    order;
  Iavl.check_invariants t

let test_iavl_update_missing_raises () =
  let t, addrs, set_date = fresh_iavl ~entries:2 () in
  set_date 0 1;
  set_date 1 2;
  ignore (Iavl.insert t addrs.(0));
  Alcotest.(check bool) "raises" true
    (try
       ignore
         (Iavl.update t addrs.(1) ~new_key:(5L, Int64.of_int addrs.(1))
            ~set:(fun () -> set_date 1 5));
       false
     with Heap.Heap_error _ -> true)

let prop_iavl_matches_model =
  QCheck.Test.make ~name:"iavl matches model under random date churn"
    ~count:100
    (QCheck.make
       QCheck.Gen.(list_size (1 -- 150) (triple (int_bound 2) (int_bound 23) (int_bound 40))))
    (fun ops ->
      let entries = 24 in
      let t, addrs, set_date = fresh_iavl ~entries () in
      let dates = Array.make entries 0 in
      let present = Array.make entries false in
      (* Seed distinct initial dates. *)
      Array.iteri
        (fun i _ ->
          dates.(i) <- i;
          set_date i i)
        addrs;
      List.iter
        (fun (op, i, d) ->
          match op with
          | 0 ->
              let added = Iavl.insert t addrs.(i) in
              if added = present.(i) then failwith "insert mismatch";
              present.(i) <- true
          | 1 ->
              let removed = Iavl.delete t addrs.(i) in
              if removed <> present.(i) then failwith "delete mismatch";
              present.(i) <- false
          | _ ->
              if present.(i) then begin
                ignore
                  (Iavl.update t addrs.(i)
                     ~new_key:(Int64.of_int d, Int64.of_int addrs.(i))
                     ~set:(fun () ->
                       dates.(i) <- d;
                       set_date i d))
              end)
        ops;
      Iavl.check_invariants t;
      let expected =
        Array.to_list (Array.mapi (fun i a -> (i, a)) addrs)
        |> List.filter (fun (i, _) -> present.(i))
        |> List.map (fun (i, a) -> (dates.(i), a))
        |> List.sort compare
        |> List.map snd
      in
      let actual = List.rev (Iavl.fold t ~init:[] ~f:(fun acc a -> a :: acc)) in
      actual = expected)

let suites =
  [
    ( "pheap.layout",
      [
        Alcotest.test_case "offsets" `Quick test_layout_offsets;
        Alcotest.test_case "padding" `Quick test_layout_padding;
        Alcotest.test_case "errors" `Quick test_layout_errors;
      ] );
    ( "pheap.heap",
      [
        Alcotest.test_case "bump alloc" `Quick test_heap_alloc_bump;
        Alcotest.test_case "exhaustion" `Quick test_heap_alloc_exhaustion;
        Alcotest.test_case "u64 roundtrip" `Quick test_heap_u64_roundtrip;
        Alcotest.test_case "persistent allocator" `Quick
          test_heap_allocator_is_persistent;
        Alcotest.test_case "rejects garbage" `Quick test_heap_rejects_garbage;
        Alcotest.test_case "field access" `Quick test_heap_field_access;
      ] );
    ( "pheap.avl",
      [
        Alcotest.test_case "insert/contains" `Quick test_avl_insert_contains;
        Alcotest.test_case "sorted fold" `Quick test_avl_sorted_fold;
        Alcotest.test_case "delete" `Quick test_avl_delete;
        Alcotest.test_case "balanced height" `Quick test_avl_balanced_height;
        Alcotest.test_case "free-list reuse" `Quick test_avl_free_list_reuse;
        Alcotest.test_case "composite keys" `Quick
          test_avl_composite_key_ordering;
        Alcotest.test_case "heap bounded" `Quick
          test_avl_heap_bounded_by_free_list;
        Alcotest.test_case "replace_key in place" `Quick
          test_avl_replace_key_in_place;
        Alcotest.test_case "replace_key reinserts" `Quick
          test_avl_replace_key_reinserts;
        Alcotest.test_case "replace_key missing" `Quick
          test_avl_replace_key_missing;
        QCheck_alcotest.to_alcotest prop_avl_matches_set_model;
      ] );
    ( "pheap.iavl",
      [
        Alcotest.test_case "indirect key order" `Quick
          test_iavl_orders_by_indirect_key;
        Alcotest.test_case "update in place" `Quick test_iavl_update_in_place;
        Alcotest.test_case "update relocates" `Quick test_iavl_update_relocates;
        Alcotest.test_case "update missing raises" `Quick
          test_iavl_update_missing_raises;
        QCheck_alcotest.to_alcotest prop_iavl_matches_model;
      ] );
  ]
