(* Tests for the baseline DSM backends: twin/diff detection, page
   shipping, and the adaptive hybrid selector. *)

open Lbc_core
open Lbc_dsm

let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Twin/diff *)

let mk_mem size = Bytes.make size '\000'

let reader mem ~offset ~len = Bytes.sub mem offset len

let test_twin_detects_exact_words () =
  let mem = mk_mem (3 * 8192) in
  let tw = Twin.create ~page_size:8192 in
  let store offset s =
    ignore (Twin.touch tw ~read:(reader mem) ~offset ~len:(String.length s));
    Bytes.blit_string s 0 mem offset (String.length s)
  in
  store 16 "12345678";
  store 8192 "abcdefgh";
  (* Unaligned write straddling two words: the run covers both. *)
  store 20006 "XYZW";
  let runs = Twin.diff tw ~read:(reader mem) in
  Alcotest.(check (list (pair int int)))
    "modified word runs"
    [ (16, 8); (8192, 8); (20000, 16) ]
    runs

let test_twin_faults_once_per_page () =
  let mem = mk_mem 8192 in
  let tw = Twin.create ~page_size:8192 in
  let f1 = Twin.touch tw ~read:(reader mem) ~offset:0 ~len:8 in
  let f2 = Twin.touch tw ~read:(reader mem) ~offset:100 ~len:8 in
  check_int "first touch faults" 1 f1;
  check_int "second touch free" 0 f2;
  Alcotest.(check (list int)) "one dirty page" [ 0 ] (Twin.dirty_pages tw)

let test_twin_unmodified_page_diffs_empty () =
  let mem = mk_mem 8192 in
  let tw = Twin.create ~page_size:8192 in
  ignore (Twin.touch tw ~read:(reader mem) ~offset:0 ~len:8);
  (* Touched but never actually changed: no runs. *)
  Alcotest.(check (list (pair int int))) "no runs" [] (Twin.diff tw ~read:(reader mem))

let test_twin_write_spanning_pages () =
  let mem = mk_mem (2 * 8192) in
  let tw = Twin.create ~page_size:8192 in
  let faults = Twin.touch tw ~read:(reader mem) ~offset:8188 ~len:8 in
  check_int "two faults" 2 faults;
  Bytes.blit_string "WWWWWWWW" 0 mem 8188 8;
  Alcotest.(check (list (pair int int)))
    "run spans boundary"
    [ (8184, 16) ]
    (Twin.diff tw ~read:(reader mem))

let prop_twin_diff_matches_model =
  QCheck.Test.make ~name:"twin diff covers exactly the modified words"
    ~count:150
    (QCheck.make
       QCheck.Gen.(
         list_size (1 -- 30)
           (pair (int_bound (16384 - 16)) (pair (1 -- 16) printable))))
    (fun writes ->
      let mem = mk_mem 16384 in
      let tw = Twin.create ~page_size:8192 in
      let modified = Array.make 16384 false in
      List.iter
        (fun (offset, (len, c)) ->
          ignore (Twin.touch tw ~read:(reader mem) ~offset ~len);
          for i = offset to offset + len - 1 do
            if Bytes.get mem i <> c then modified.(i) <- true;
            Bytes.set mem i c
          done)
        writes;
      let runs = Twin.diff tw ~read:(reader mem) in
      (* Every modified byte is covered... *)
      let covered = Array.make 16384 false in
      List.iter
        (fun (o, l) ->
          for i = o to o + l - 1 do
            covered.(i) <- true
          done)
        runs;
      let ok = ref true in
      for i = 0 to 16383 do
        if modified.(i) && not covered.(i) then ok := false;
        (* ...and covered bytes are within a word of a modification. *)
        if covered.(i) then begin
          let word = i / 8 * 8 in
          let any = ref false in
          for j = word to word + 7 do
            if modified.(j) then any := true
          done;
          if not !any then ok := false
        end
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Backends over a live cluster *)

let region = 0

let mk_cluster () =
  let c = Cluster.create ~nodes:2 () in
  Cluster.add_region c ~id:region ~size:65536;
  Cluster.map_region_all c ~region;
  c

let run_backend kind =
  let c = mk_cluster () in
  let stats = ref None in
  let record = ref None in
  Cluster.spawn c ~node:0 (fun node ->
      let txn = Backend.Dtxn.begin_ node ~kind in
      Backend.Dtxn.acquire txn 0;
      Backend.Dtxn.set_u64 txn ~region ~offset:64 7L;
      Backend.Dtxn.set_u64 txn ~region ~offset:9000 9L;
      record := Some (Backend.Dtxn.commit txn);
      stats := Some (Backend.Dtxn.stats txn));
  Cluster.run c;
  (c, Option.get !stats, Option.get !record)

let test_backends_agree_on_data () =
  List.iter
    (fun kind ->
      let c, _, _ = run_backend kind in
      Alcotest.(check int64)
        (Backend.kind_name kind ^ " value at peer")
        7L
        (Node.get_u64 (Cluster.node c 1) ~region ~offset:64);
      Alcotest.(check int64)
        (Backend.kind_name kind ^ " second value")
        9L
        (Node.get_u64 (Cluster.node c 1) ~region ~offset:9000))
    [ Backend.Log; Backend.Cpy_cmp; Backend.Page ]

let test_cpycmp_stats_and_fine_ranges () =
  let _, stats, record = run_backend Backend.Cpy_cmp in
  check_int "two write faults (two pages)" 2 stats.Backend.write_faults;
  check_int "two pages compared" 2 stats.Backend.pages_compared;
  (* Diff finds just the two 8-byte words. *)
  check_int "payload is 16 bytes" 16 (Lbc_wal.Record.ranges_bytes (Option.get (Some record)))

let test_page_ships_whole_pages () =
  let _, stats, record = run_backend Backend.Page in
  check_int "two pages shipped" 2 stats.Backend.pages_shipped;
  check_int "payload is two full pages" (2 * 8192)
    (Lbc_wal.Record.ranges_bytes record)

let test_log_has_no_faults () =
  let _, stats, record = run_backend Backend.Log in
  check_int "no faults" 0 stats.Backend.write_faults;
  check_int "payload is 16 bytes" 16 (Lbc_wal.Record.ranges_bytes record)

(* OO7 under every detection backend: whatever detects the writes, the
   receiver must end up with the same database. *)
let test_oo7_backends_equivalent () =
  let open Lbc_oo7 in
  let tiny = Schema.tiny in
  let digest_after kind =
    let cluster = Runner.setup ~nodes:2 tiny in
    (match kind with
    | Backend.Log -> ignore (Runner.run ~cluster ~writer:0 tiny (Traversal.T2 Traversal.B))
    | backend ->
        Cluster.spawn cluster ~node:0 (fun node ->
            let txn = Backend.Dtxn.begin_ node ~kind:backend in
            Backend.Dtxn.acquire txn Runner.lock;
            let mem =
              {
                Lbc_pheap.Heap.read =
                  (fun ~offset ~len ->
                    Backend.Dtxn.read txn ~region:Runner.region ~offset ~len);
                write =
                  (fun ~offset b ->
                    Backend.Dtxn.write txn ~region:Runner.region ~offset b);
              }
            in
            let db =
              Database.attach_mem tiny mem ~size:(Schema.region_size tiny)
            in
            ignore (Traversal.run db (Traversal.T2 Traversal.B));
            ignore (Backend.Dtxn.commit txn));
        Cluster.run cluster);
    let writer =
      Database.checksum
        (Database.attach_node tiny (Cluster.node cluster 0) ~region:Runner.region)
    in
    let receiver =
      Database.checksum
        (Database.attach_node tiny (Cluster.node cluster 1) ~region:Runner.region)
    in
    Alcotest.(check int64)
      (Backend.kind_name kind ^ " receiver converged")
      writer receiver;
    writer
  in
  let d_log = digest_after Backend.Log in
  let d_cc = digest_after Backend.Cpy_cmp in
  let d_page = digest_after Backend.Page in
  (* Same deterministic traversal on the same database: all three detection
     mechanisms must yield the same final state. *)
  Alcotest.(check int64) "log = cpy/cmp" d_log d_cc;
  Alcotest.(check int64) "log = page" d_log d_page

(* ------------------------------------------------------------------ *)
(* Adaptive hybrid *)

let test_adaptive_defaults_to_log () =
  let a = Adaptive.create () in
  Alcotest.(check bool) "no history -> Log" true
    (Adaptive.choose a ~lock:0 = Backend.Log)

let test_adaptive_breakeven_value () =
  let a = Adaptive.create () in
  (* 813 µs of trap+copy+compare over the 18.1 µs unordered update cost:
     the paper's "45 or fewer updates per page". *)
  Alcotest.(check bool)
    (Printf.sprintf "breakeven %.1f in [44,46]" (Adaptive.breakeven a))
    true
    (Adaptive.breakeven a >= 44.0 && Adaptive.breakeven a <= 46.0)

let test_adaptive_switches_on_dense_updates () =
  let a = Adaptive.create () in
  for _ = 1 to 10 do
    Adaptive.observe a ~lock:3 ~updates:2000 ~pages:5
  done;
  Alcotest.(check bool) "dense -> Cpy/Cmp" true
    (Adaptive.choose a ~lock:3 = Backend.Cpy_cmp);
  (* Sparse segment unaffected. *)
  Adaptive.observe a ~lock:4 ~updates:10 ~pages:5;
  Alcotest.(check bool) "sparse -> Log" true
    (Adaptive.choose a ~lock:4 = Backend.Log)

let test_adaptive_recovers_when_density_drops () =
  let a = Adaptive.create ~alpha:0.5 () in
  Adaptive.observe a ~lock:0 ~updates:1000 ~pages:2;
  Alcotest.(check bool) "dense" true (Adaptive.choose a ~lock:0 = Backend.Cpy_cmp);
  for _ = 1 to 8 do
    Adaptive.observe a ~lock:0 ~updates:1 ~pages:1
  done;
  Alcotest.(check bool) "sparse again" true
    (Adaptive.choose a ~lock:0 = Backend.Log)

let suites =
  [
    ( "dsm.twin",
      [
        Alcotest.test_case "detects exact words" `Quick
          test_twin_detects_exact_words;
        Alcotest.test_case "faults once per page" `Quick
          test_twin_faults_once_per_page;
        Alcotest.test_case "clean page diffs empty" `Quick
          test_twin_unmodified_page_diffs_empty;
        Alcotest.test_case "write spans pages" `Quick
          test_twin_write_spanning_pages;
        QCheck_alcotest.to_alcotest prop_twin_diff_matches_model;
      ] );
    ( "dsm.backend",
      [
        Alcotest.test_case "all backends propagate" `Quick
          test_backends_agree_on_data;
        Alcotest.test_case "cpy/cmp stats + ranges" `Quick
          test_cpycmp_stats_and_fine_ranges;
        Alcotest.test_case "page ships pages" `Quick test_page_ships_whole_pages;
        Alcotest.test_case "log has no faults" `Quick test_log_has_no_faults;
        Alcotest.test_case "OO7 backends equivalent" `Quick
          test_oo7_backends_equivalent;
      ] );
    ( "dsm.adaptive",
      [
        Alcotest.test_case "defaults to Log" `Quick test_adaptive_defaults_to_log;
        Alcotest.test_case "breakeven ~45" `Quick test_adaptive_breakeven_value;
        Alcotest.test_case "switches when dense" `Quick
          test_adaptive_switches_on_dense_updates;
        Alcotest.test_case "recovers when sparse" `Quick
          test_adaptive_recovers_when_density_drops;
      ] );
  ]
