(* Tests for the write-ahead log: record codec, log device management,
   crash/torn-tail behaviour. *)

open Lbc_storage
open Lbc_wal

let txn_testable = Alcotest.testable Record.pp_txn Record.equal_txn

let mk_txn ?(node = 1) ?(tid = 7) ?(locks = []) ranges =
  {
    Record.node;
    tid;
    locks;
    ranges =
      List.map
        (fun (region, offset, s) ->
          { Record.region; offset; data = Bytes.of_string s })
        ranges;
  }

let lock lock_id seqno prev_write_seq = { Record.lock_id; seqno; prev_write_seq }

(* ------------------------------------------------------------------ *)
(* Record codec *)

let test_record_roundtrip () =
  let t =
    mk_txn ~node:3 ~tid:42
      ~locks:[ lock 5 10 8; lock 77 1 0 ]
      [ (0, 100, "hello"); (1, 4096, "world!") ]
  in
  let b = Record.encode t in
  match Record.decode b ~pos:0 with
  | Record.Txn (t', next) ->
      Alcotest.check txn_testable "roundtrip" t t';
      Alcotest.(check int) "consumed all" (Bytes.length b) next
  | _ -> Alcotest.fail "decode failed"

let test_record_empty () =
  let t = mk_txn ~node:0 ~tid:0 [] in
  match Record.decode (Record.encode t) ~pos:0 with
  | Record.Txn (t', _) -> Alcotest.check txn_testable "empty txn" t t'
  | _ -> Alcotest.fail "decode failed"

let test_record_encoded_size () =
  let t =
    mk_txn ~locks:[ lock 1 2 0 ] [ (0, 0, "abcdefgh"); (0, 64, "Z") ]
  in
  Alcotest.(check int) "size matches (default header)"
    (Bytes.length (Record.encode t))
    (Record.encoded_size t);
  Alcotest.(check int) "size matches (compact header)"
    (Bytes.length (Record.encode ~range_header_size:20 t))
    (Record.encoded_size ~range_header_size:20 t)

let test_record_header_padding () =
  let t = mk_txn [ (0, 0, "x") ] in
  let fat = Record.encoded_size t in
  let slim = Record.encoded_size ~range_header_size:Record.min_header_size t in
  Alcotest.(check int) "104-byte RVM headers cost 84 bytes more per range"
    (Record.rvm_disk_header_size - Record.min_header_size)
    (fat - slim)

let test_record_decode_zeros_is_end () =
  match Record.decode (Bytes.make 64 '\000') ~pos:0 with
  | Record.End -> ()
  | _ -> Alcotest.fail "expected End"

let test_record_decode_corrupt_is_torn () =
  let t = mk_txn [ (0, 0, "payload") ] in
  let b = Record.encode t in
  (* Flip a payload byte: CRC must catch it. *)
  let i = Bytes.length b - 6 in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 1));
  (match Record.decode b ~pos:0 with
  | Record.Torn _ -> ()
  | _ -> Alcotest.fail "expected Torn (bad crc)");
  (* Truncate: also torn. *)
  let b = Record.encode t in
  let cut = Bytes.sub b 0 (Bytes.length b - 3) in
  match Record.decode cut ~pos:0 with
  | Record.Torn _ -> ()
  | _ -> Alcotest.fail "expected Torn (truncated)"

let test_record_garbage_is_torn () =
  match Record.decode (Bytes.of_string "garbage-not-a-record") ~pos:0 with
  | Record.Torn _ -> ()
  | _ -> Alcotest.fail "expected Torn"

let gen_txn =
  let open QCheck.Gen in
  let gen_range =
    triple (int_bound 3) (int_bound 100_000) (string_size ~gen:printable (1 -- 32))
  in
  let gen_lock =
    map
      (fun (a, b, c) -> lock a (b + 1) c)
      (triple (int_bound 500) (int_bound 1000) (int_bound 1000))
  in
  map
    (fun (node, tid, locks, ranges) ->
      mk_txn ~node ~tid ~locks ranges)
    (quad (int_bound 100) (int_bound 10_000) (list_size (0 -- 5) gen_lock)
       (list_size (0 -- 8) gen_range))

let prop_record_roundtrip =
  QCheck.Test.make ~name:"record roundtrip (random)" ~count:300
    (QCheck.make gen_txn) (fun t ->
      match Record.decode (Record.encode t) ~pos:0 with
      | Record.Txn (t', next) ->
          Record.equal_txn t t' && next = Bytes.length (Record.encode t)
      | _ -> false)

let prop_records_concatenate =
  QCheck.Test.make ~name:"back-to-back records decode in sequence" ~count:100
    (QCheck.make (QCheck.Gen.list_size QCheck.Gen.(1 -- 5) gen_txn))
    (fun txns ->
      let blob =
        Bytes.concat Bytes.empty (List.map (fun t -> Record.encode t) txns)
      in
      let rec loop pos acc =
        match Record.decode blob ~pos with
        | Record.Txn (t, next) -> loop next (t :: acc)
        | Record.End -> List.rev acc
        | Record.Torn _ -> []
      in
      let decoded = loop 0 [] in
      List.length decoded = List.length txns
      && List.for_all2 Record.equal_txn txns decoded)

(* ------------------------------------------------------------------ *)
(* Log *)

let test_log_fresh_attach () =
  let d = Dev.create () in
  let log = Log.attach d in
  Alcotest.(check int) "head" Log.header_size (Log.head log);
  Alcotest.(check int) "tail" Log.header_size (Log.tail log);
  Alcotest.(check int) "live" 0 (Log.live_bytes log)

let test_log_append_read () =
  let d = Dev.create () in
  let log = Log.attach d in
  let t1 = mk_txn ~tid:1 [ (0, 0, "one") ] in
  let t2 = mk_txn ~tid:2 ~locks:[ lock 3 1 0 ] [ (0, 8, "two") ] in
  ignore (Log.append log t1);
  ignore (Log.append log t2);
  let txns, status = Log.read_all log in
  Alcotest.(check (list txn_testable)) "both records" [ t1; t2 ] txns;
  Alcotest.(check bool) "clean" true (status = Log.Clean);
  Alcotest.(check int) "count" 2 (Log.record_count log)

let test_log_force_survives_crash () =
  let d = Dev.create () in
  let log = Log.attach d in
  ignore (Log.append log (mk_txn ~tid:1 [ (0, 0, "durable") ]));
  Log.force log;
  ignore (Log.append log (mk_txn ~tid:2 [ (0, 0, "volatile") ]));
  Dev.crash d;
  let log' = Log.attach d in
  let txns, status = Log.read_all log' in
  Alcotest.(check int) "only forced record" 1 (List.length txns);
  Alcotest.(check bool) "clean" true (status = Log.Clean);
  Alcotest.(check int) "tid" 1 (List.hd txns).Record.tid

let test_log_torn_tail_ignored () =
  let d = Dev.create () in
  let log = Log.attach d in
  ignore (Log.append log (mk_txn ~tid:1 [ (0, 0, "good") ]));
  Log.force log;
  ignore (Log.append log (mk_txn ~tid:2 [ (0, 0, "half-written") ]));
  (* Crash with the second record torn mid-way. *)
  Dev.crash ~tear_bytes:30 d;
  let log' = Log.attach d in
  let txns, _ = Log.read_all log' in
  Alcotest.(check int) "torn tail dropped" 1 (List.length txns);
  (* Appending after the torn tail overwrites it cleanly. *)
  ignore (Log.append log' (mk_txn ~tid:3 [ (0, 0, "after") ]));
  Log.force log';
  let log'' = Log.attach d in
  let txns, status = Log.read_all log'' in
  Alcotest.(check (list int)) "records after repair" [ 1; 3 ]
    (List.map (fun t -> t.Record.tid) txns);
  Alcotest.(check bool) "clean" true (status = Log.Clean)

let test_log_trim () =
  let d = Dev.create () in
  let log = Log.attach d in
  let off1 = Log.append log (mk_txn ~tid:1 [ (0, 0, "aa") ]) in
  let off2 = Log.append log (mk_txn ~tid:2 [ (0, 0, "bb") ]) in
  Log.force log;
  Alcotest.(check int) "first at header" Log.header_size off1;
  Log.set_head log off2;
  let txns, _ = Log.read_all log in
  Alcotest.(check (list int)) "only second lives" [ 2 ]
    (List.map (fun t -> t.Record.tid) txns);
  (* Trim point survives reattach. *)
  let log' = Log.attach d in
  Alcotest.(check int) "head persisted" off2 (Log.head log');
  Alcotest.(check int) "count" 1 (Log.record_count log')

let test_log_bad_device () =
  let d = Dev.create () in
  Dev.write_string d ~off:0 "this is definitely not a log header";
  Alcotest.(check bool) "raises Bad_log" true
    (try
       ignore (Log.attach d);
       false
     with Log.Bad_log _ -> true)

let test_log_fold_offsets () =
  let d = Dev.create () in
  let log = Log.attach d in
  let offs =
    List.map
      (fun tid -> Log.append log (mk_txn ~tid [ (0, 0, "r") ]))
      [ 1; 2; 3 ]
  in
  let seen, _ = Log.fold log ~init:[] (fun acc off _ -> off :: acc) in
  Alcotest.(check (list int)) "offsets" offs (List.rev seen)

let suites =
  [
    ( "wal.record",
      [
        Alcotest.test_case "roundtrip" `Quick test_record_roundtrip;
        Alcotest.test_case "empty txn" `Quick test_record_empty;
        Alcotest.test_case "encoded_size" `Quick test_record_encoded_size;
        Alcotest.test_case "header padding" `Quick test_record_header_padding;
        Alcotest.test_case "zeros = End" `Quick test_record_decode_zeros_is_end;
        Alcotest.test_case "corrupt = Torn" `Quick
          test_record_decode_corrupt_is_torn;
        Alcotest.test_case "garbage = Torn" `Quick test_record_garbage_is_torn;
        QCheck_alcotest.to_alcotest prop_record_roundtrip;
        QCheck_alcotest.to_alcotest prop_records_concatenate;
      ] );
    ( "wal.log",
      [
        Alcotest.test_case "fresh attach" `Quick test_log_fresh_attach;
        Alcotest.test_case "append/read" `Quick test_log_append_read;
        Alcotest.test_case "force survives crash" `Quick
          test_log_force_survives_crash;
        Alcotest.test_case "torn tail ignored" `Quick test_log_torn_tail_ignored;
        Alcotest.test_case "trim" `Quick test_log_trim;
        Alcotest.test_case "bad device" `Quick test_log_bad_device;
        Alcotest.test_case "fold offsets" `Quick test_log_fold_offsets;
      ] );
  ]
