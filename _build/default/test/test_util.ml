(* Tests for the lbc.util substrate: CRC-32, codecs, RNG, stats, pqueue. *)

open Lbc_util

let check_int32 = Alcotest.(check int32)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Crc32 *)

let test_crc_known_vector () =
  (* The standard CRC-32 check value. *)
  check_int32 "crc(123456789)" 0xCBF43926l (Crc32.string "123456789")

let test_crc_empty () = check_int32 "crc(empty)" 0l (Crc32.string "")

let test_crc_incremental () =
  let s = "the quick brown fox jumps over the lazy dog" in
  let direct = Crc32.string s in
  let a = String.sub s 0 10 and b = String.sub s 10 (String.length s - 10) in
  let crc = Crc32.update_string (Crc32.update_string Crc32.empty a) b in
  check_int32 "incremental = one-shot" direct (Crc32.finish crc)

let test_crc_bounds () =
  let b = Bytes.create 4 in
  Alcotest.check_raises "out of bounds" (Invalid_argument "Crc32.update")
    (fun () -> ignore (Crc32.update Crc32.empty b ~pos:2 ~len:3))

let prop_crc_detects_flip =
  QCheck.Test.make ~name:"crc detects single-byte flip" ~count:200
    QCheck.(pair (string_of_size Gen.(1 -- 64)) small_nat)
    (fun (s, i) ->
      QCheck.assume (String.length s > 0);
      let i = i mod String.length s in
      let b = Bytes.of_string s in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x5A));
      Crc32.string s <> Crc32.bytes b ~pos:0 ~len:(Bytes.length b))

(* ------------------------------------------------------------------ *)
(* Codec *)

let test_codec_roundtrip_fixed () =
  let w = Codec.writer () in
  Codec.u8 w 0xAB;
  Codec.u16 w 0xBEEF;
  Codec.u32 w 0xDEADBEEF;
  Codec.u64 w 0x0123456789ABCDEFL;
  Codec.int_as_u64 w max_int;
  Codec.raw_string w "hello";
  let r = Codec.reader (Codec.contents w) in
  check_int "u8" 0xAB (Codec.get_u8 r);
  check_int "u16" 0xBEEF (Codec.get_u16 r);
  check_int "u32" 0xDEADBEEF (Codec.get_u32 r);
  Alcotest.(check int64) "u64" 0x0123456789ABCDEFL (Codec.get_u64 r);
  check_int "int_as_u64" max_int (Codec.get_int_as_u64 r);
  Alcotest.(check string) "raw" "hello"
    (Bytes.to_string (Codec.get_raw r ~len:5));
  check_int "exhausted" 0 (Codec.remaining r)

let test_codec_truncated () =
  let r = Codec.reader (Bytes.of_string "\x01") in
  ignore (Codec.get_u8 r);
  Alcotest.check_raises "truncated u8" (Codec.Truncated "u8") (fun () ->
      ignore (Codec.get_u8 r))

let test_codec_patch () =
  let w = Codec.writer () in
  Codec.u8 w 0x11;
  let at = Codec.length w in
  Codec.u32 w 0;
  Codec.u8 w 0x22;
  Codec.patch_u32 w ~at 0xCAFEBABE;
  let r = Codec.reader (Codec.contents w) in
  check_int "before" 0x11 (Codec.get_u8 r);
  check_int "patched" 0xCAFEBABE (Codec.get_u32 r);
  check_int "after" 0x22 (Codec.get_u8 r)

let prop_varint_roundtrip =
  QCheck.Test.make ~name:"varint roundtrip" ~count:500
    QCheck.(oneof [ small_nat; int_range 0 max_int ])
    (fun n ->
      let w = Codec.writer () in
      Codec.varint w n;
      let r = Codec.reader (Codec.contents w) in
      Codec.get_varint r = n && Codec.remaining r = 0)

let prop_u32_roundtrip =
  QCheck.Test.make ~name:"u32 roundtrip" ~count:500
    QCheck.(int_bound 0xFFFFFFF)
    (fun n ->
      let w = Codec.writer () in
      Codec.u32 w n;
      Codec.get_u32 (Codec.reader (Codec.contents w)) = n)

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_split_independent () =
  let a = Rng.create 7 in
  let b = Rng.split a in
  (* After splitting, the two generators should not produce the same
     stream. *)
  let same = ref true in
  for _ = 1 to 16 do
    if Rng.int64 a <> Rng.int64 b then same := false
  done;
  Alcotest.(check bool) "streams diverge" false !same

let prop_rng_int_in_bounds =
  QCheck.Test.make ~name:"Rng.int within bounds" ~count:300
    QCheck.(pair small_nat (int_range 1 10_000))
    (fun (seed, bound) ->
      let t = Rng.create seed in
      let ok = ref true in
      for _ = 1 to 50 do
        let v = Rng.int t bound in
        if v < 0 || v >= bound then ok := false
      done;
      !ok)

let test_rng_shuffle_permutes () =
  let t = Rng.create 3 in
  let a = Array.init 100 Fun.id in
  Rng.shuffle t a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 100 Fun.id) sorted

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_stats_basic () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  check_int "count" 8 (Stats.count s);
  Alcotest.(check (float 1e-9)) "mean" 5.0 (Stats.mean s);
  Alcotest.(check (float 1e-9)) "min" 2.0 (Stats.min s);
  Alcotest.(check (float 1e-9)) "max" 9.0 (Stats.max s);
  (* Sample variance of this classic data set is 32/7. *)
  Alcotest.(check (float 1e-9)) "variance" (32.0 /. 7.0) (Stats.variance s)

let test_stats_merge () =
  let all = Stats.create () and a = Stats.create () and b = Stats.create () in
  let data = List.init 37 (fun i -> float_of_int (i * i) /. 3.0) in
  List.iteri
    (fun i x ->
      Stats.add all x;
      Stats.add (if i mod 2 = 0 then a else b) x)
    data;
  let m = Stats.merge a b in
  check_int "count" (Stats.count all) (Stats.count m);
  Alcotest.(check (float 1e-6)) "mean" (Stats.mean all) (Stats.mean m);
  Alcotest.(check (float 1e-6)) "variance" (Stats.variance all)
    (Stats.variance m)

let test_stats_empty () =
  let s = Stats.create () in
  Alcotest.(check (float 0.0)) "mean" 0.0 (Stats.mean s);
  Alcotest.(check (float 0.0)) "variance" 0.0 (Stats.variance s)

(* ------------------------------------------------------------------ *)
(* Pqueue *)

let test_pqueue_ordering () =
  let q = Pqueue.create ~compare:Int.compare in
  List.iter (Pqueue.push q) [ 5; 1; 4; 1; 3; 9; 2 ];
  let drained = List.init 7 (fun _ -> Pqueue.pop_exn q) in
  Alcotest.(check (list int)) "sorted" [ 1; 1; 2; 3; 4; 5; 9 ] drained;
  Alcotest.(check bool) "empty" true (Pqueue.is_empty q)

let test_pqueue_fifo_ties () =
  (* Equal keys must come out in insertion order (determinism). *)
  let q = Pqueue.create ~compare:(fun (a, _) (b, _) -> Int.compare a b) in
  List.iter (Pqueue.push q) [ (1, "a"); (1, "b"); (0, "z"); (1, "c") ];
  let tags = List.init 4 (fun _ -> snd (Pqueue.pop_exn q)) in
  Alcotest.(check (list string)) "fifo ties" [ "z"; "a"; "b"; "c" ] tags

let test_pqueue_to_list_nondestructive () =
  let q = Pqueue.create ~compare:Int.compare in
  List.iter (Pqueue.push q) [ 3; 1; 2 ];
  Alcotest.(check (list int)) "to_list" [ 1; 2; 3 ] (Pqueue.to_list q);
  check_int "length unchanged" 3 (Pqueue.length q);
  Alcotest.(check (option int)) "peek" (Some 1) (Pqueue.peek q)

let prop_pqueue_sorts =
  QCheck.Test.make ~name:"pqueue drains sorted" ~count:200
    QCheck.(list int)
    (fun xs ->
      let q = Pqueue.create ~compare:Int.compare in
      List.iter (Pqueue.push q) xs;
      let rec drain acc =
        match Pqueue.pop q with None -> List.rev acc | Some v -> drain (v :: acc)
      in
      drain [] = List.sort compare xs)

let qtest = QCheck_alcotest.to_alcotest

let suites =
  [
    ( "util.crc32",
      [
        Alcotest.test_case "known vector" `Quick test_crc_known_vector;
        Alcotest.test_case "empty" `Quick test_crc_empty;
        Alcotest.test_case "incremental" `Quick test_crc_incremental;
        Alcotest.test_case "bounds" `Quick test_crc_bounds;
        qtest prop_crc_detects_flip;
      ] );
    ( "util.codec",
      [
        Alcotest.test_case "roundtrip fixed" `Quick test_codec_roundtrip_fixed;
        Alcotest.test_case "truncated" `Quick test_codec_truncated;
        Alcotest.test_case "patch_u32" `Quick test_codec_patch;
        qtest prop_varint_roundtrip;
        qtest prop_u32_roundtrip;
      ] );
    ( "util.rng",
      [
        Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
        Alcotest.test_case "split independent" `Quick test_rng_split_independent;
        Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes;
        qtest prop_rng_int_in_bounds;
      ] );
    ( "util.stats",
      [
        Alcotest.test_case "basic" `Quick test_stats_basic;
        Alcotest.test_case "merge" `Quick test_stats_merge;
        Alcotest.test_case "empty" `Quick test_stats_empty;
      ] );
    ( "util.pqueue",
      [
        Alcotest.test_case "ordering" `Quick test_pqueue_ordering;
        Alcotest.test_case "fifo ties" `Quick test_pqueue_fifo_ties;
        Alcotest.test_case "to_list nondestructive" `Quick
          test_pqueue_to_list_nondestructive;
        qtest prop_pqueue_sorts;
      ] );
  ]
