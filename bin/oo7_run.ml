(* Run one OO7 traversal on a simulated coherency cluster and report the
   paper's measurements (updates, bytes, message bytes, pages, phase
   breakdown).  Optionally dumps the devices for the offline tools. *)

open Cmdliner
open Lbc_oo7

let save_devices dir store =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  List.iter
    (fun name ->
      match Lbc_storage.Store.find store name with
      | None -> ()
      | Some dev ->
          let path = Filename.concat dir name in
          let oc = open_out_bin path in
          output_bytes oc (Lbc_storage.Dev.stable_snapshot dev);
          close_out oc;
          Format.printf "saved %s (%d bytes)@." path (Lbc_storage.Dev.stable_size dev))
    (Lbc_storage.Store.names store)

let run traversal config_name nodes protocol lazy_mode costs log_mode_name
    save trace_out flight_out backend_name debug =
  if debug then begin
    Logs.set_reporter (Logs.format_reporter ());
    Logs.set_level (Some Logs.Debug)
  end;
  let real =
    match String.lowercase_ascii backend_name with
    | "sim" -> false
    | "real" -> true
    | other ->
        Format.eprintf "unknown backend %S (sim|real)@." other;
        exit 2
  in
  if real && costs then begin
    Format.eprintf
      "--backend=real runs on the wall clock; --costs charges the model's \
       virtual costs — pick one@.";
    exit 2
  end;
  if real && save <> None then begin
    Format.eprintf
      "--save needs the sim storage service; the real backend writes \
       throwaway temp files@.";
    exit 2
  end;
  let backend =
    if real then Lbc_core.Platform.Custom Lbc_real.Backend.factory
    else Lbc_core.Platform.Sim
  in
  let schema =
    match config_name with
    | "small" -> Schema.small
    | "tiny" -> Schema.tiny
    | other -> Format.eprintf "unknown config %S@." other; exit 2
  in
  let kind =
    match Traversal.of_name traversal with
    | Some k -> k
    | None -> Format.eprintf "unknown traversal %S (try T1, T2-A .. T12-C)@." traversal; exit 2
  in
  let protocol_kind =
    match String.lowercase_ascii protocol with
    | "log" -> Lbc_dsm.Backend.Log
    | "cpycmp" | "cpy-cmp" | "cpy/cmp" -> Lbc_dsm.Backend.Cpy_cmp
    | "page" -> Lbc_dsm.Backend.Page
    | other -> Format.eprintf "unknown protocol %S (log|cpycmp|page)@." other; exit 2
  in
  if real && protocol_kind <> Lbc_dsm.Backend.Log then begin
    Format.eprintf
      "--backend=real supports the log protocol (page-grained detection \
       rides the sim's fault model)@.";
    exit 2
  end;
  let log_mode =
    match Lbc_wal.Command.log_mode_of_name log_mode_name with
    | Some m -> m
    | None ->
        Format.eprintf "unknown log mode %S (value|command|adaptive)@."
          log_mode_name;
        exit 2
  in
  let config =
    {
      (if costs then Lbc_core.Config.measured else Lbc_core.Config.default) with
      Lbc_core.Config.propagation =
        (if lazy_mode then Lbc_core.Config.Lazy else Lbc_core.Config.Eager);
      disk_logging = not costs;
      log_mode;
      trace = trace_out <> None;
      trace_path = trace_out;
    }
  in
  let cluster = Runner.setup ~config ~backend ~nodes schema in
  Format.printf
    "OO7 %s: %s config, %d nodes, %s protocol, %s backend, %s logging%s%s@."
    (Traversal.name kind) config_name nodes
    (Lbc_dsm.Backend.kind_name protocol_kind)
    (Lbc_core.Cluster.backend_name cluster)
    (Lbc_wal.Command.log_mode_name log_mode)
    (if lazy_mode then ", lazy propagation" else "")
    (if costs then ", costs charged" else "");
  (match protocol_kind with
  | Lbc_dsm.Backend.Log ->
      let o = Runner.run ~cluster ~writer:0 schema kind in
      let r = o.Runner.result and p = o.Runner.profile in
      Format.printf
        "visits: %d composite, %d atomic; %d field updates, %d index ops@."
        r.Traversal.composite_visits r.Traversal.atomic_visits
        r.Traversal.field_updates r.Traversal.index_ops;
      Format.printf
        "profile: %d updates, %d bytes updated, %d message bytes, %d pages@."
        p.Lbc_costmodel.Model.updates p.Lbc_costmodel.Model.unique_bytes
        p.Lbc_costmodel.Model.message_bytes p.Lbc_costmodel.Model.pages_updated;
      (match o.Runner.record.Lbc_wal.Record.cmd with
      | Some c ->
          Format.printf
            "encoding: command record (op %d, %d param bytes) replacing %d \
             value ranges@."
            c.Lbc_wal.Record.op
            (Bytes.length c.Lbc_wal.Record.params)
            (List.length o.Runner.value.Lbc_wal.Record.ranges)
      | None -> ());
      Format.printf "writer %s time: %.1f µs@."
        (if real then "wall-clock" else "virtual")
        o.Runner.elapsed;
      Format.printf "model phases: %a@." Lbc_costmodel.Phases.pp_ms
        (Lbc_costmodel.Model.log_phases p)
  | backend ->
      (* Page-grained backends detect writes themselves; run the traversal
         through a detection transaction. *)
      let result = ref None in
      Lbc_core.Cluster.spawn cluster ~node:0 (fun node ->
          let txn = Lbc_dsm.Backend.Dtxn.begin_ node ~kind:backend in
          Lbc_dsm.Backend.Dtxn.acquire txn Runner.lock;
          let mem =
            {
              Lbc_pheap.Heap.read =
                (fun ~offset ~len ->
                  Lbc_dsm.Backend.Dtxn.read txn ~region:Runner.region ~offset ~len);
              write =
                (fun ~offset b ->
                  Lbc_dsm.Backend.Dtxn.write txn ~region:Runner.region ~offset b);
            }
          in
          let db = Database.attach_mem schema mem ~size:(Schema.region_size schema) in
          let r = Traversal.run db kind in
          let record = Lbc_dsm.Backend.Dtxn.commit txn in
          result := Some (r, record, Lbc_dsm.Backend.Dtxn.stats txn));
      Lbc_core.Cluster.run cluster;
      let r, record, st = Option.get !result in
      Format.printf
        "visits: %d composite, %d atomic; %d field updates@."
        r.Traversal.composite_visits r.Traversal.atomic_visits
        r.Traversal.field_updates;
      Format.printf
        "detection: %d write faults, %d pages twinned, %d compared, %d shipped@."
        st.Lbc_dsm.Backend.write_faults st.Lbc_dsm.Backend.pages_twinned
        st.Lbc_dsm.Backend.pages_compared st.Lbc_dsm.Backend.pages_shipped;
      Format.printf "record: %d ranges, %d payload bytes, %d wire bytes@."
        (List.length record.Lbc_wal.Record.ranges)
        (Lbc_wal.Record.ranges_bytes record)
        (Lbc_core.Wire.size record));
  (* Under lazy propagation peers are intentionally stale until they
     acquire; pull the chains before checking convergence. *)
  if lazy_mode then begin
    for n = 0 to nodes - 1 do
      Lbc_core.Cluster.spawn cluster ~node:n (fun node ->
          let txn = Lbc_core.Node.Txn.begin_ node in
          Lbc_core.Node.Txn.acquire txn Runner.lock;
          Lbc_core.Node.Txn.commit txn)
    done;
    Lbc_core.Cluster.run cluster
  end;
  (* Verify convergence across the cluster. *)
  let digest n =
    Database.checksum
      (Database.attach_node schema (Lbc_core.Cluster.node cluster n)
         ~region:Runner.region)
  in
  let d0 = digest 0 in
  let ok = ref true in
  for n = 1 to nodes - 1 do
    if not (Int64.equal d0 (digest n)) then begin
      ok := false;
      Format.printf "!! node %d cache diverged@." n
    end
  done;
  if !ok then Format.printf "all %d caches converged (digest %Lx)@." nodes d0;
  Format.printf "network: %d messages, %d bytes@."
    (Lbc_core.Cluster.total_messages cluster)
    (Lbc_core.Cluster.total_bytes cluster);
  (match trace_out with
  | Some path ->
      Lbc_core.Cluster.write_trace cluster;
      Format.printf "trace written to %s (inspect with lbc-trace, or load in Perfetto)@."
        path
  | None -> ());
  (match flight_out with
  | Some path ->
      let p = Lbc_core.Cluster.dump_flight ~path cluster in
      Format.printf
        "flight dump written to %s (decode with lbc-trace, merge check with \
         lbc-trace --self-check)@."
        p
  | None -> ());
  (match save with
  | Some dir ->
      (* Make log contents durable before snapshotting. *)
      Lbc_storage.Store.sync_all (Lbc_core.Cluster.store cluster);
      save_devices dir (Lbc_core.Cluster.store cluster)
  | None -> ());
  Lbc_core.Cluster.shutdown cluster;
  if not !ok then exit 1

let traversal =
  Arg.(value & opt string "T2-A" & info [ "t"; "traversal" ] ~docv:"NAME"
         ~doc:"Traversal to run: T1, T6, T2-A/B/C, T3-A/B/C, T12-A/C.")

let config_name =
  Arg.(value & opt string "small" & info [ "c"; "config" ] ~docv:"CFG"
         ~doc:"Database configuration: small (paper scale) or tiny.")

let nodes =
  Arg.(value & opt int 2 & info [ "n"; "nodes" ] ~doc:"Cluster size.")

let protocol =
  Arg.(value & opt string "log" & info [ "p"; "protocol" ]
         ~doc:"Write detection: log, cpycmp or page.")

let lazy_mode =
  Arg.(value & flag & info [ "lazy" ] ~doc:"Lazy update propagation.")

let costs =
  Arg.(value & flag & info [ "costs" ]
         ~doc:"Charge the paper's operation costs as virtual time.")

let log_mode_name =
  Arg.(value & opt string "value" & info [ "log-mode" ] ~docv:"MODE"
         ~doc:"Per-transaction record encoding: $(b,value) logs new-value \
               ranges (stock RVM), $(b,command) logs the traversal \
               operation itself, $(b,adaptive) picks whichever encodes \
               smaller.")

let save =
  Arg.(value & opt (some string) None & info [ "save" ] ~docv:"DIR"
         ~doc:"Dump device images (logs, database) for the offline tools.")

let trace_out =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"PATH"
         ~doc:"Record the run as a Chrome trace-event file at $(docv) \
               (analyze with lbc-trace, or load in Perfetto).")

let flight_out =
  Arg.(value & opt (some string) None & info [ "flight" ] ~docv:"PATH"
         ~doc:"Dump the always-on flight recorder (every node's ring of \
               recent events) as a binary LBCF file at $(docv) after the \
               run (decode with lbc-trace).  Works without --trace: the \
               flight recorder is on by default.")

let debug =
  Arg.(value & flag & info [ "debug" ] ~doc:"Trace coherency events.")

let backend_name =
  Arg.(value & opt string "sim" & info [ "backend" ] ~docv:"BACKEND"
         ~doc:"Platform: $(b,sim) (deterministic single-core simulation) \
               or $(b,real) (one OCaml 5 domain per node, Unix-socket \
               fabric, real files with real fsync; wall-clock timing).")

let cmd =
  Cmd.v
    (Cmd.info "oo7-run" ~doc:"Run an OO7 traversal under log-based coherency")
    Term.(const run $ traversal $ config_name $ nodes $ protocol $ lazy_mode
          $ costs $ log_mode_name $ save $ trace_out $ flight_out
          $ backend_name $ debug)

let () = exit (Cmd.eval cmd)
