(* Offline distributed recovery: merge per-node redo logs in lock-sequence
   order (the paper's merge utility, Section 3.4) and replay the committed
   records into the database image. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let b = Bytes.create len in
  really_input ic b 0 len;
  close_in ic;
  b

let write_file path b =
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc

let recover db_path out_path log_paths =
  let logs =
    List.map
      (fun path ->
        let dev = Lbc_storage.Dev.create ~name:path () in
        Lbc_storage.Dev.load dev (read_file path);
        Lbc_wal.Log.attach dev)
      log_paths
  in
  let db = Lbc_storage.Dev.create ~name:"db" () in
  (match db_path with
  | Some p -> Lbc_storage.Dev.load db (read_file p)
  | None -> ());
  match Lbc_core.Merge.merge_logs logs with
  | Error (Lbc_core.Merge.Unorderable why) ->
      Format.eprintf "cannot merge logs: %s@." why;
      exit 1
  | Ok records ->
      Format.printf "merged %d committed transactions from %d logs@."
        (List.length records) (List.length logs);
      let outcome =
        Lbc_rvm.Recovery.replay_records records ~db_for_region:(fun _ -> Some db)
      in
      Format.printf "replayed %d records, %d bytes@."
        outcome.Lbc_rvm.Recovery.records_replayed
        outcome.Lbc_rvm.Recovery.bytes_replayed;
      let out =
        match out_path with
        | Some p -> p
        | None ->
            (* Keep reruns out of the source tree by default. *)
            if not (Sys.file_exists "_build") then Unix.mkdir "_build" 0o755;
            Filename.concat "_build" "recovered.db"
      in
      write_file out (Lbc_storage.Dev.stable_snapshot db);
      Format.printf "wrote %s (%d bytes)@." out (Lbc_storage.Dev.stable_size db)

let db_path =
  Arg.(value & opt (some file) None & info [ "db" ] ~docv:"FILE"
         ~doc:"Existing database image to replay into (default: empty).")

let out_path =
  Arg.(value & opt (some string) None & info [ "o"; "out"; "output" ]
         ~docv:"FILE"
         ~doc:"Where to write the recovered image (default \
               _build/recovered.db).")

let log_paths =
  Arg.(non_empty & pos_all file [] & info [] ~docv:"LOG"
         ~doc:"Per-node log images to merge.")

let cmd =
  Cmd.v
    (Cmd.info "lbc-recover"
       ~doc:"Merge per-node redo logs and replay them into a database image")
    Term.(const recover $ db_path $ out_path $ log_paths)

let () = exit (Cmd.eval cmd)
