(* Offline distributed recovery: merge per-node redo logs in lock-sequence
   order (the paper's merge utility, Section 3.4) and replay the committed
   records into the database image.

   --mode serial|partitioned|ondemand selects the replay shape.
   Partitioned mode splits the merged stream into lock/region-disjoint
   partitions (Merge.partition) and replays them as concurrent simulated
   processes against a device charged with the OSDI-94 disk profile, so
   the reported virtual time shows the speedup; ondemand additionally
   starts the partitions in priority order (largest first) and reports
   when the first one finishes — the offline analogue of a serving
   node's time to first commit.  The recovered image is byte-identical
   in every mode. *)

open Cmdliner

type mode = Serial | Partitioned | OnDemand
type backend = Sim | Real

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let b = Bytes.create len in
  really_input ic b 0 len;
  close_in ic;
  b

let write_file path b =
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc

(* Replay [streams] as one simulated process each against [db], charging
   device time; returns the summed outcome and the elapsed virtual µs. *)
let timed_replay ~streams ~db =
  let engine = Lbc_sim.Engine.create () in
  let outcomes = ref [] in
  let first_done = ref None in
  List.iteri
    (fun i stream ->
      Lbc_sim.Proc.spawn engine
        ~name:(Printf.sprintf "recover-p%d" i)
        (fun () ->
          let o =
            Lbc_rvm.Recovery.replay_records stream ~db_for_region:(fun _ ->
                Some db)
          in
          if !first_done = None then
            first_done := Some (Lbc_sim.Engine.now engine);
          outcomes := o :: !outcomes))
    streams;
  Lbc_sim.Engine.run engine;
  let outcome =
    List.fold_left
      (fun (acc : Lbc_rvm.Recovery.outcome) (o : Lbc_rvm.Recovery.outcome) ->
        {
          Lbc_rvm.Recovery.records_replayed =
            acc.Lbc_rvm.Recovery.records_replayed
            + o.Lbc_rvm.Recovery.records_replayed;
          bytes_replayed =
            acc.Lbc_rvm.Recovery.bytes_replayed
            + o.Lbc_rvm.Recovery.bytes_replayed;
          torn_tail =
            acc.Lbc_rvm.Recovery.torn_tail || o.Lbc_rvm.Recovery.torn_tail;
        })
      { Lbc_rvm.Recovery.records_replayed = 0;
        bytes_replayed = 0;
        torn_tail = false }
      !outcomes
  in
  (outcome, Lbc_sim.Engine.now engine, !first_done)

let sum_outcomes =
  List.fold_left
    (fun (acc : Lbc_rvm.Recovery.outcome) (o : Lbc_rvm.Recovery.outcome) ->
      {
        Lbc_rvm.Recovery.records_replayed =
          acc.Lbc_rvm.Recovery.records_replayed
          + o.Lbc_rvm.Recovery.records_replayed;
        bytes_replayed =
          acc.Lbc_rvm.Recovery.bytes_replayed
          + o.Lbc_rvm.Recovery.bytes_replayed;
        torn_tail =
          acc.Lbc_rvm.Recovery.torn_tail || o.Lbc_rvm.Recovery.torn_tail;
      })
    { Lbc_rvm.Recovery.records_replayed = 0;
      bytes_replayed = 0;
      torn_tail = false }

(* Real replay: one OCaml 5 domain per partition group against a real
   file, wall-clock timed.  Partitions are lock/region-disjoint, so any
   grouping is sound; the device serializes writes on its own mutex. *)
let domain_replay ~streams ~db =
  let t0 = Unix.gettimeofday () in
  let wall_us () = (Unix.gettimeofday () -. t0) *. 1e6 in
  let buckets =
    max 1 (min (List.length streams) (Domain.recommended_domain_count ()))
  in
  let groups = Array.make buckets [] in
  List.iteri (fun i s -> groups.(i mod buckets) <- s :: groups.(i mod buckets)) streams;
  let first_done = Atomic.make None in
  let replay_group streams () =
    let os =
      List.map
        (fun stream ->
          let o =
            Lbc_rvm.Recovery.replay_records stream ~db_for_region:(fun _ ->
                Some db)
          in
          ignore
            (Atomic.compare_and_set first_done None (Some (wall_us ())) : bool);
          o)
        streams
    in
    sum_outcomes os
  in
  let domains =
    Array.map (fun g -> Domain.spawn (replay_group (List.rev g))) groups
  in
  let outcome = sum_outcomes (Array.to_list (Array.map Domain.join domains)) in
  Lbc_storage.Dev.sync db;
  (outcome, wall_us (), Atomic.get first_done)

let recover db_path out_path mode backend log_paths =
  (* Command records (adaptive logging) can only replay if their
     operations are registered in this process. *)
  Lbc_oo7.Commands.ensure ();
  let logs =
    List.map
      (fun path ->
        let dev = Lbc_storage.Dev.create ~name:path () in
        Lbc_storage.Dev.load dev (read_file path);
        Lbc_wal.Log.attach dev)
      log_paths
  in
  let db, tmp_path =
    match backend with
    | Sim ->
        ( Lbc_storage.Dev.create ~latency:Lbc_storage.Latency.osdi94_disk
            ~name:"db" (),
          None )
    | Real ->
        let path = Filename.temp_file "lbc-recover" ".db" in
        (Lbc_storage.Dev.create_file ~path ~name:"db" (), Some path)
  in
  (match db_path with
  | Some p -> Lbc_storage.Dev.load db (read_file p)
  | None -> ());
  match Lbc_core.Merge.merge_logs logs with
  | Error (Lbc_core.Merge.Unorderable why) ->
      Format.eprintf "cannot merge logs: %s@." why;
      exit 1
  | Ok records ->
      Format.printf "merged %d committed transactions from %d logs@."
        (List.length records) (List.length logs);
      let commands =
        List.length
          (List.filter
             (fun (r : Lbc_wal.Record.txn) -> r.Lbc_wal.Record.cmd <> None)
             records)
      in
      if commands > 0 then
        Format.printf
          "%d command record(s) will be re-executed against the image@."
          commands;
      let streams =
        match mode with
        | Serial -> if records = [] then [] else [ records ]
        | Partitioned -> Lbc_core.Merge.partition records
        | OnDemand ->
            (* Priority order: drain the biggest chains first, the same
               hottest-first heuristic a serving node's drain uses. *)
            List.stable_sort
              (fun a b -> compare (List.length b) (List.length a))
              (Lbc_core.Merge.partition records)
      in
      let outcome, elapsed, first_done =
        match backend with
        | Sim -> timed_replay ~streams ~db
        | Real -> domain_replay ~streams ~db
      in
      let clock = match backend with Sim -> "virtual" | Real -> "wall" in
      Format.printf
        "replayed %d records, %d bytes in %d partition(s) (%s mode, %.0f \
         %s \xc2\xb5s)@."
        outcome.Lbc_rvm.Recovery.records_replayed
        outcome.Lbc_rvm.Recovery.bytes_replayed (List.length streams)
        (match mode with
        | Serial -> "serial"
        | Partitioned -> "partitioned"
        | OnDemand -> "ondemand")
        elapsed clock;
      (match (mode, first_done) with
      | OnDemand, Some t ->
          Format.printf
            "first partition warm at %.0f %s \xc2\xb5s (time to first \
             recovered chain)@."
            t clock
      | _ -> ());
      let out =
        match out_path with
        | Some p -> p
        | None ->
            (* Keep reruns out of the source tree by default. *)
            if not (Sys.file_exists "_build") then Unix.mkdir "_build" 0o755;
            Filename.concat "_build" "recovered.db"
      in
      write_file out (Lbc_storage.Dev.stable_snapshot db);
      Format.printf "wrote %s (%d bytes)@." out (Lbc_storage.Dev.stable_size db);
      (match tmp_path with
      | Some p ->
          Lbc_storage.Dev.close db;
          (try Sys.remove p with Sys_error _ -> ())
      | None -> ())

let db_path =
  Arg.(value & opt (some file) None & info [ "db" ] ~docv:"FILE"
         ~doc:"Existing database image to replay into (default: empty).")

let out_path =
  Arg.(value & opt (some string) None & info [ "o"; "out"; "output" ]
         ~docv:"FILE"
         ~doc:"Where to write the recovered image (default \
               _build/recovered.db).")

let mode =
  Arg.(
    value
    & opt
        (enum
           [
             ("serial", Serial);
             ("partitioned", Partitioned);
             ("ondemand", OnDemand);
           ])
        Serial
    & info [ "mode" ] ~docv:"MODE"
        ~doc:
          "Replay shape: $(b,serial) applies the whole merged stream in \
           one process; $(b,partitioned) replays lock/region-disjoint \
           partitions concurrently; $(b,ondemand) replays them \
           concurrently in priority order (largest chain first) and \
           reports the virtual time until the first partition is warm.  \
           The recovered image is identical in every mode; only the \
           simulated timing differs.")

let backend =
  Arg.(
    value
    & opt (enum [ ("sim", Sim); ("real", Real) ]) Sim
    & info [ "backend" ] ~docv:"BACKEND"
        ~doc:
          "$(b,sim) replays against a simulated device charged with the \
           OSDI-94 disk profile and reports virtual time; $(b,real) \
           replays against a real temp file (real writes, final fsync), \
           one OCaml 5 domain per partition group, and reports wall \
           time.")

let log_paths =
  Arg.(non_empty & pos_all file [] & info [] ~docv:"LOG"
         ~doc:"Per-node log images to merge.")

let cmd =
  Cmd.v
    (Cmd.info "lbc-recover"
       ~doc:"Merge per-node redo logs and replay them into a database image")
    Term.(const recover $ db_path $ out_path $ mode $ backend $ log_paths)

let () = exit (Cmd.eval cmd)
