(* lbc-explore: systematic schedule exploration for the simulated
   cluster.

   Runs N seeded schedules of a named scenario (chaos fault workloads,
   the OO7 bench configurations, a planted-bug toy), judging each with
   the log invariants and the one-copy serializability oracle.  On the
   first violation it delta-debugs the schedule's decision trace down to
   the minimal set of non-FIFO reorderings and writes a replayable
   counterexample.trace; --replay reproduces it byte-exactly.

     lbc-explore --list
     lbc-explore --scenario drop-heal --seeds 100
     lbc-explore --scenario planted --policy pct --seed 7
     lbc-explore --replay counterexample.trace
     lbc-explore --self-test

   Exit status: 0 all schedules clean (or a clean replay), 1 a violation
   was found (or a replay showed one), 2 on usage/I/O errors. *)

open Cmdliner
module Scenario = Lbc_explore.Scenario
module Explore = Lbc_explore.Explore
module S = Lbc_sim.Schedule

let pr fmt = Format.printf fmt

let list_scenarios () =
  List.iter
    (fun s -> pr "%-24s %s@." s.Scenario.name s.Scenario.descr)
    Scenario.all;
  exit 0

let scenario_or_die name =
  match Scenario.find name with
  | Some s -> s
  | None ->
      Format.eprintf "unknown scenario %S; try --list@." name;
      exit 2

let report_violations vs =
  List.iter
    (fun v -> pr "violation: %a@." Lbc_analysis.Violation.pp v)
    vs

(* Cluster scenarios auto-dump the flight recorder on any violation;
   name the file next to the repro line so the last moments of the
   failing schedule travel with the counterexample. *)
let report_flight () =
  match Lbc_core.Cluster.last_flight_dump () with
  | Some path -> pr "flight dump: %s (decode with lbc-trace)@." path
  | None -> ()

(* One schedule, fully specified: report and exit. *)
let run_one s policy =
  let r = s.Scenario.run policy in
  pr "scenario %s, policy %s: %d choice points, %d committed txns@."
    s.Scenario.name (S.policy_to_string policy) r.Scenario.choice_points
    r.Scenario.committed;
  report_violations r.Scenario.violations;
  if r.Scenario.violations = [] then begin
    pr "ok: all oracles hold@.";
    exit 0
  end
  else begin
    report_flight ();
    exit 1
  end

let replay_file path =
  match Explore.read_trace path with
  | Error e ->
      Format.eprintf "%s: %s@." path e;
      exit 2
  | Ok t -> (
      pr "replaying %s: scenario %s, %d decisions (found by %s)@." path
        t.Explore.t_scenario
        (List.length t.Explore.t_decisions)
        t.Explore.t_policy;
      match Explore.replay_trace t with
      | Error e ->
          Format.eprintf "%s@." e;
          exit 2
      | Ok (r, reproduced) ->
          report_violations r.Scenario.violations;
          if r.Scenario.violations = [] then begin
            pr "replay is clean — the recorded failure did NOT reproduce@.";
            exit 1
          end
          else begin
            pr "replay %s the recorded failure (%s)@."
              (if reproduced then "reproduced" else
                 "found a DIFFERENT failure than")
              (String.concat ", "
                 (Explore.names_of r.Scenario.violations));
            report_flight ();
            exit 1
          end)

let explore_cmd s mode seeds seed0 out no_shrink =
  pr "exploring %s: up to %d %s schedules (seeds %d..%d)@." s.Scenario.name
    seeds
    (match mode with `Random -> "random-tie" | `Pct -> "pct")
    seed0
    (seed0 + seeds - 1);
  match Explore.explore ~mode ~seed0 ~seeds s with
  | Explore.Pass n ->
      pr "ok: %d schedules explored, every oracle held@." n;
      exit 0
  | Explore.Fail f ->
      pr "violation at seed %d (schedule %d of %d), %d choice points:@."
        (seed0 + f.Explore.schedules_run)
        (f.Explore.schedules_run + 1)
        seeds f.Explore.choice_points;
      report_violations f.Explore.violations;
      let f =
        if no_shrink then f
        else begin
          pr "shrinking %d non-FIFO decisions...@."
            (Explore.nonzero_count f.Explore.decisions);
          let f' = Explore.shrink s f in
          pr "shrunk to %d non-FIFO decision(s) over %d choice points@."
            (Explore.nonzero_count f'.Explore.decisions)
            (List.length f'.Explore.decisions);
          f'
        end
      in
      Explore.write_trace out f;
      pr "wrote %s@." out;
      pr "repro: lbc-explore --replay %s@." out;
      report_flight ();
      exit 1

let main list_ scenario seeds policy seed seed0 replay out no_shrink =
  if list_ then list_scenarios ();
  match replay with
  | Some path -> replay_file path
  | None -> (
      match scenario with
      | None ->
          Format.eprintf
            "nothing to do: pass --scenario, --replay or --list@.";
          exit 2
      | Some name -> (
          let s = scenario_or_die name in
          match (policy, seed) with
          | "fifo", _ -> run_one s S.Fifo
          | "random", Some sd -> run_one s (S.Random_tie sd)
          | "pct", Some sd -> run_one s (S.Pct sd)
          | "random", None -> explore_cmd s `Random seeds seed0 out no_shrink
          | "pct", None -> explore_cmd s `Pct seeds seed0 out no_shrink
          | p, _ ->
              Format.eprintf
                "unknown policy %S (expected fifo, random or pct)@." p;
              exit 2))

(* ----------------------------------------------------------------- *)
(* Self-test: the planted bug must be found, shrunk to a single
   reordering, written out and reproduced; the OO7 bench configurations
   must stay serializable under every explored schedule. *)

let self_test () =
  let results = ref [] in
  let check name ok detail =
    results := (name, ok, detail) :: !results;
    pr "%-46s %s  %s@." name (if ok then "PASS" else "FAIL") detail
  in
  let planted = Scenario.planted in
  (* 1. deterministic baseline: FIFO must be clean *)
  let fifo = planted.Scenario.run S.Fifo in
  check "planted: clean under FIFO"
    (fifo.Scenario.violations = [])
    (Printf.sprintf "%d choice points" fifo.Scenario.choice_points);
  (* 2. bounded exploration must find the planted bug *)
  let budget = 64 in
  (match Explore.explore ~mode:`Random ~seeds:budget planted with
  | Explore.Pass n ->
      check "planted: exploration finds the bug" false
        (Printf.sprintf "%d schedules, no violation" n)
  | Explore.Fail f ->
      check "planted: exploration finds the bug" true
        (Printf.sprintf "seed %d of %d" (1 + f.Explore.schedules_run) budget);
      (* 3. ddmin must isolate the single flipped pair *)
      let shrunk = Explore.shrink planted f in
      let nz = Explore.nonzero_count shrunk.Explore.decisions in
      check "planted: shrinks to one reordering" (nz = 1)
        (Printf.sprintf "%d -> %d non-FIFO decisions"
           (Explore.nonzero_count f.Explore.decisions)
           nz);
      (* 4. the written counterexample must replay to the same failure *)
      let path = Filename.temp_file "lbc-explore" ".trace" in
      Explore.write_trace path shrunk;
      (match Explore.read_trace path with
      | Error e -> check "planted: trace round-trips" false e
      | Ok t -> (
          check "planted: trace round-trips"
            (t.Explore.t_decisions = shrunk.Explore.decisions)
            (Printf.sprintf "%d decisions" (List.length t.Explore.t_decisions));
          match Explore.replay_trace t with
          | Error e -> check "planted: replay reproduces" false e
          | Ok (r, reproduced) ->
              check "planted: replay reproduces"
                (reproduced && r.Scenario.violations <> [])
                (String.concat ", " (Explore.names_of r.Scenario.violations))));
      Sys.remove path);
  (* 5. replay determinism on a cluster scenario: same trace, same run *)
  let dh = Scenario.drop_heal in
  let probe = dh.Scenario.run (S.Random_tie 1) in
  let r1 = Explore.replay dh probe.Scenario.decisions in
  let r2 = Explore.replay dh probe.Scenario.decisions in
  check "drop-heal: replay is byte-deterministic"
    (r1.Scenario.committed = r2.Scenario.committed
    && r1.Scenario.choice_points = r2.Scenario.choice_points
    && Explore.names_of r1.Scenario.violations
       = Explore.names_of r2.Scenario.violations
    && probe.Scenario.violations = [])
    (Printf.sprintf "%d choice points, %d txns" r1.Scenario.choice_points
       r1.Scenario.committed);
  (* 6. the OO7 bench configurations stay serializable under explored
     schedules *)
  List.iter
    (fun s ->
      match Explore.explore ~mode:`Random ~seeds:6 s with
      | Explore.Pass n ->
          check
            (Printf.sprintf "%s: schedules serializable" s.Scenario.name)
            true
            (Printf.sprintf "%d schedules clean" n)
      | Explore.Fail f ->
          check
            (Printf.sprintf "%s: schedules serializable" s.Scenario.name)
            false
            (String.concat ", " (Explore.names_of f.Explore.violations)))
    [ Scenario.oo7_eager; Scenario.oo7_multicast; Scenario.oo7_lazy ];
  let all_ok = List.for_all (fun (_, ok, _) -> ok) !results in
  if all_ok then begin
    pr "self-test passed (%d checks)@." (List.length !results);
    exit 0
  end
  else begin
    pr "self-test FAILED@.";
    exit 1
  end

(* ----------------------------------------------------------------- *)

let list_flag =
  Arg.(value & flag & info [ "list" ] ~doc:"List the known scenarios.")

let scenario_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "scenario" ] ~docv:"NAME" ~doc:"Scenario to run (see --list).")

let seeds_arg =
  Arg.(
    value & opt int 50
    & info [ "seeds" ] ~docv:"N"
        ~doc:"Number of seeded schedules to explore (default 50).")

let policy_arg =
  Arg.(
    value & opt string "random"
    & info [ "policy" ] ~docv:"P"
        ~doc:
          "Schedule policy family: $(b,random) (seeded tie permutation, \
           the default), $(b,pct) (random priorities) or $(b,fifo) (the \
           deterministic baseline, a single schedule).")

let seed_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "seed" ] ~docv:"S"
        ~doc:"Run exactly one schedule with this seed instead of exploring.")

let seed0_arg =
  Arg.(
    value & opt int 1
    & info [ "seed0" ] ~docv:"S" ~doc:"First seed of the exploration range.")

let replay_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "replay" ] ~docv:"FILE"
        ~doc:"Replay a recorded counterexample trace file.")

let out_arg =
  Arg.(
    value
    & opt string "counterexample.trace"
    & info [ "out" ] ~docv:"FILE"
        ~doc:"Where to write the (shrunk) counterexample trace.")

let no_shrink_arg =
  Arg.(
    value & flag
    & info [ "no-shrink" ]
        ~doc:"Keep the raw failing decision trace (skip delta debugging).")

let cmd =
  Cmd.v
    (Cmd.info "lbc-explore"
       ~doc:
         "Systematic schedule exploration with a serializability oracle \
          and replayable counterexamples")
    Term.(
      const main $ list_flag $ scenario_arg $ seeds_arg $ policy_arg
      $ seed_arg $ seed0_arg $ replay_arg $ out_arg $ no_shrink_arg)

let () =
  if Array.exists (String.equal "--self-test") Sys.argv then self_test ()
  else exit (Cmd.eval cmd)
