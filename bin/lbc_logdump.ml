(* Inspect a redo-log image: header, live records, torn tails. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let b = Bytes.create len in
  really_input ic b 0 len;
  close_in ic;
  b

let dump verbose path =
  let dev = Lbc_storage.Dev.create ~name:path () in
  Lbc_storage.Dev.load dev (read_file path);
  match Lbc_wal.Log.attach dev with
  | exception Lbc_wal.Log.Bad_log why ->
      Format.eprintf "%s: not a log: %s@." path why;
      exit 1
  | log ->
      Format.printf "%s: head=%d tail=%d live=%d bytes, %d records@." path
        (Lbc_wal.Log.head log) (Lbc_wal.Log.tail log)
        (Lbc_wal.Log.live_bytes log)
        (Lbc_wal.Log.record_count log);
      let (), status =
        Lbc_wal.Log.fold log ~init:() (fun () off txn ->
            Format.printf "  @[<h>%8d: %a  (disk %dB, wire %dB)@]@." off
              Lbc_wal.Record.pp_txn txn
              (Lbc_wal.Record.encoded_size txn)
              (Lbc_core.Wire.size txn);
            if verbose then
              List.iter
                (fun r ->
                  Format.printf "            region %d +%d: %d bytes@."
                    r.Lbc_wal.Record.region r.Lbc_wal.Record.offset
                    (Bytes.length r.Lbc_wal.Record.data))
                txn.Lbc_wal.Record.ranges)
      in
      (match status with
      | Lbc_wal.Log.Clean -> ()
      | Lbc_wal.Log.Torn_at (off, why) ->
          Format.printf "  torn record at %d (%s) — ignored by recovery@." off
            why);
      let n, _ =
        Lbc_wal.Log.fold_ctrl log ~init:0 (fun n off c ->
            if n = 0 then Format.printf "  control records:@.";
            Format.printf "  @[<h>%8d: %a@]@." off Lbc_wal.Record.pp_ctrl c;
            n + 1)
      in
      ignore n

let dump_all verbose paths = List.iter (dump verbose) paths

let paths =
  Arg.(non_empty & pos_all file [] & info [] ~docv:"LOG" ~doc:"Log image files.")

let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Show ranges.")

let cmd =
  Cmd.v (Cmd.info "lbc-logdump" ~doc:"Print the records of redo-log images")
    Term.(const dump_all $ verbose $ paths)

let () = exit (Cmd.eval cmd)
