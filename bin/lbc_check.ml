(* lbc-check: static analysis over redo-log images and OCaml sources.

   verify LOG...  — coherency race detection + log invariant verification
   lint PATH...   — repo-specific source lint
   self-test      — run the checker against simulated workloads and
                    seeded corruptions (also spelled --self-test)

   Exit status: 0 when every check passes, 1 when a violation is found,
   2 on I/O errors (unreadable path, not a log image); cmdliner's usual
   124 on command-line misuse. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let b = Bytes.create len in
  really_input ic b 0 len;
  close_in ic;
  b

let load_log path =
  let dev = Lbc_storage.Dev.create ~name:path () in
  Lbc_storage.Dev.load dev (read_file path);
  match Lbc_wal.Log.attach dev with
  | log -> log
  | exception Lbc_wal.Log.Bad_log why ->
      Format.eprintf "%s: not a log image: %s@." path why;
      exit 2

let report violations =
  List.iter
    (fun v -> Format.printf "violation: %a@." Lbc_analysis.Violation.pp v)
    violations;
  match violations with
  | [] ->
      Format.printf "ok: all invariants hold@.";
      0
  | vs ->
      let names =
        List.sort_uniq String.compare
          (List.map Lbc_analysis.Violation.name vs)
      in
      Format.printf "%d violation(s): %s@." (List.length vs)
        (String.concat ", " names);
      1

let verify no_races strict regions paths =
  (* Command records verify by re-execution; their operations must be
     registered before any decode touches them. *)
  Lbc_oo7.Commands.ensure ();
  let logs = List.map load_log paths in
  List.iter2
    (fun path log ->
      (* attach already stopped the tail at the first torn record; any
         bytes past it are crash residue that recovery would ignore too. *)
      let residue =
        Lbc_storage.Dev.size (Lbc_wal.Log.dev log) - Lbc_wal.Log.tail log
      in
      if residue > 0 then
        Format.printf
          "note: %s has %d torn/trailing bytes after the last complete \
           record; verifying the clean prefix@."
          path residue)
    paths logs;
  exit
    (report
       (Lbc_analysis.Invariants.check_logs ~infer_base:(not strict)
          ~races:(not no_races) ?regions logs))

let lint paths =
  let violations =
    try Lbc_analysis.Lint.scan_paths paths
    with Sys_error why ->
      Format.eprintf "%s@." why;
      exit 2
  in
  List.iter
    (fun v -> Format.printf "%a@." Lbc_analysis.Violation.pp v)
    violations;
  if violations = [] then begin
    Format.printf "lint clean@.";
    exit 0
  end
  else begin
    Format.printf "%d lint finding(s)@." (List.length violations);
    exit 1
  end

let write_sample_logs dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let logs =
    Lbc_analysis.Selftest.build_sim_logs ~config:Lbc_core.Config.default
      ~nodes:4 ~seed:101 ~iterations:20 ()
  in
  List.iteri
    (fun n log ->
      let path = Filename.concat dir (Printf.sprintf "log.%d.img" n) in
      let oc = open_out_bin path in
      output_bytes oc (Lbc_storage.Dev.snapshot (Lbc_wal.Log.dev log));
      close_out oc;
      Format.printf "wrote %s@." path)
    logs

let self_test write_logs =
  Option.iter write_sample_logs write_logs;
  let results = Lbc_analysis.Selftest.run () in
  List.iter
    (fun r ->
      Format.printf "%-42s %s  %s@." r.Lbc_analysis.Selftest.check
        (if r.Lbc_analysis.Selftest.ok then "PASS" else "FAIL")
        r.Lbc_analysis.Selftest.detail)
    results;
  if Lbc_analysis.Selftest.all_ok results then begin
    Format.printf "self-test passed (%d checks)@." (List.length results);
    exit 0
  end
  else begin
    Format.printf "self-test FAILED@.";
    exit 1
  end

let log_paths =
  Arg.(non_empty & pos_all file [] & info [] ~docv:"LOG" ~doc:"Log image files.")

let lint_paths =
  Arg.(
    non_empty & pos_all string []
    & info [] ~docv:"PATH" ~doc:"Source files or directories.")

let no_races =
  Arg.(
    value & flag
    & info [ "no-races" ] ~doc:"Skip the happens-before race detector.")

let strict =
  Arg.(
    value & flag
    & info [ "strict" ]
        ~doc:
          "Require write chains to start at sequence number 0 instead of \
           inferring a checkpoint baseline from the first record.")

let regions =
  Arg.(
    value
    & opt (some (list int)) None
    & info [ "regions" ] ~docv:"ID,..."
        ~doc:
          "Declare the mapped region set: any record addressing a region \
           outside it is flagged (receivers silently drop such ranges, so \
           the write reaches nobody).")

let verify_cmd =
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Check redo-log images: seqno monotonicity/uniqueness, \
          prev_write_seq chains, wire-codec round-trips, merge legality, \
          unlocked overlapping writes, checkpoint bracket integrity and \
          (with $(b,--regions)) region coverage")
    Term.(const verify $ no_races $ strict $ regions $ log_paths)

let lint_cmd =
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Lint OCaml sources for polymorphic compare, catch-all recovery \
          handlers and Obj.magic")
    Term.(const lint $ lint_paths)

let write_logs =
  Arg.(
    value
    & opt (some string) None
    & info [ "write-logs" ] ~docv:"DIR"
        ~doc:
          "Also dump the simulated workload's per-node log images into \
           $(docv), for use with the verify command.")

let self_test_cmd =
  Cmd.v
    (Cmd.info "self-test"
       ~doc:
         "Verify logs from simulated workloads and check that seeded \
          corruptions are caught")
    Term.(const self_test $ write_logs)

let main =
  Cmd.group
    (Cmd.info "lbc-check" ~doc:"Static analysis for log-based coherency")
    [ verify_cmd; lint_cmd; self_test_cmd ]

let () =
  (* `lbc_check --self-test` is the spelling the test-suite hook uses. *)
  if Array.exists (String.equal "--self-test") Sys.argv then self_test None
  else exit (Cmd.eval main)
