(* Trace explorer CLI: load a Chrome trace-event file produced by a
   traced run (oo7-run --trace, or Cluster.write_trace) and print the
   per-lock contention table, the per-stage latency breakdown, and the
   critical path of the slowest transaction.  --self-check instead
   validates the trace's structural invariants (for CI). *)

open Cmdliner
module Explorer = Lbc_obs.Explorer

let pp_us ppf v =
  if v >= 1000.0 then Format.fprintf ppf "%8.2fms" (v /. 1000.0)
  else Format.fprintf ppf "%8.1fµs" v

let print_stages events =
  Format.printf "@.== per-stage latency ==@.";
  Format.printf "%-10s %7s %11s %10s %10s %10s %10s@." "stage" "count"
    "total" "p50" "p95" "p99" "max";
  List.iter
    (fun (s : Explorer.stage_stats) ->
      Format.printf "%-10s %7d %9.1fms %a %a %a %a@." s.Explorer.st_name
        s.Explorer.st_count
        (s.Explorer.st_total /. 1000.0)
        pp_us s.Explorer.st_p50 pp_us s.Explorer.st_p95 pp_us
        s.Explorer.st_p99 pp_us s.Explorer.st_max)
    (Explorer.stage_breakdown events)

let print_contention events =
  Format.printf "@.== lock contention ==@.";
  match Explorer.lock_contention events with
  | [] -> Format.printf "no queued lock acquisitions in this trace@."
  | rows ->
      Format.printf "%-8s %7s %10s %12s %12s@." "lock" "waits" "contended"
        "total wait" "max wait";
      List.iter
        (fun (r : Explorer.lock_stats) ->
          Format.printf "l%-7d %7d %10d %a %a@." r.Explorer.lk_lock
            r.Explorer.lk_waits r.Explorer.lk_contended pp_us
            r.Explorer.lk_total_wait pp_us r.Explorer.lk_max_wait)
        rows

let print_critical_path events =
  Format.printf "@.== critical path (slowest transaction) ==@.";
  match Explorer.critical_path events with
  | None -> Format.printf "no txn spans in this trace@."
  | Some (txn, inside) ->
      Format.printf "txn on node %d: start %.1fµs, duration %a@."
        txn.Explorer.pid txn.Explorer.ts pp_us txn.Explorer.dur;
      let accounted = ref 0.0 in
      List.iter
        (fun (ev : Explorer.event) ->
          if ev.Explorer.tid = Lbc_obs.Obs.lane_txn then
            accounted := !accounted +. ev.Explorer.dur;
          Format.printf "  +%a %-10s %a%s@." pp_us
            (ev.Explorer.ts -. txn.Explorer.ts)
            ev.Explorer.name pp_us ev.Explorer.dur
            (match
               List.assoc_opt "lock" ev.Explorer.args
             with
            | Some (Lbc_obs.Json.Num l) ->
                Printf.sprintf "  (lock %d)" (int_of_float l)
            | _ -> ""))
        inside;
      if txn.Explorer.dur > 0.0 then
        Format.printf "accounted inside txn lane: %a (%.0f%%)@." pp_us
          !accounted
          (100.0 *. !accounted /. txn.Explorer.dur)

let print_flows events =
  let f = Explorer.flow_summary events in
  Format.printf
    "@.flows: %d committed writes broadcast, %d applies bound to them@."
    f.Explorer.fl_starts f.Explorer.fl_ends;
  if f.Explorer.fl_unresolved > 0 then
    Format.printf "!! %d flow heads without a matching start@."
      f.Explorer.fl_unresolved

let run file self_check =
  match Explorer.load file with
  | Error why ->
      Format.eprintf "%s: %s@." file why;
      exit 2
  | Ok events ->
      if self_check then begin
        match Explorer.self_check events with
        | [] ->
            let f = Explorer.flow_summary events in
            Format.printf
              "%s: OK (%d events, %d flow starts, %d flow ends)@." file
              (List.length events) f.Explorer.fl_starts f.Explorer.fl_ends;
            exit 0
        | errors ->
            List.iter (fun e -> Format.eprintf "%s: %s@." file e) errors;
            exit 1
      end
      else begin
        Format.printf "%s: %d events@." file (List.length events);
        print_stages events;
        print_contention events;
        print_critical_path events;
        print_flows events
      end

let file =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE"
         ~doc:"Chrome trace-event JSON file written by a traced run.")

let self_check =
  Arg.(value & flag & info [ "self-check" ]
         ~doc:"Validate the trace instead of reporting: well-formed JSON, \
               non-negative span durations, monotone instant timestamps per \
               node, and every flow arrow resolving into an apply span. \
               Exit 0 if clean, 1 otherwise.")

let cmd =
  Cmd.v
    (Cmd.info "lbc-trace"
       ~doc:"Explore a trace of the coherency pipeline"
       ~man:
         [ `S Manpage.s_description;
           `P "Loads a Chrome trace-event file produced by $(b,oo7-run \
               --trace) and prints a per-lock contention table, a per-stage \
               latency breakdown (p50/p95/p99 of span durations), and the \
               critical path of the slowest transaction.  The same file \
               loads in Perfetto for interactive inspection." ])
    Term.(const run $ file $ self_check)

let () = exit (Cmd.eval cmd)
