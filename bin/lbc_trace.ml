(* Trace explorer CLI: load a Chrome trace-event file produced by a
   traced run (oo7-run --trace, or Cluster.write_trace) and print the
   per-lock contention table, the per-stage latency breakdown, and the
   critical path of the slowest transaction.  --self-check instead
   validates the trace's structural invariants (for CI).

   Binary LBCF flight dumps (Cluster.dump_flight, auto-dumped on
   strand/crash/oracle failures) are detected by magic: the N per-node
   rings are decoded, merged into one timestamp-ordered stream, and
   summarized; --self-check validates per-ring timestamp monotonicity,
   interned-id closure and drop accounting; --json re-renders the
   merged rings as a Perfetto-loadable Chrome trace. *)

open Cmdliner
module Explorer = Lbc_obs.Explorer
module Flight_dump = Lbc_obs.Flight_dump

let pp_us ppf v =
  if v >= 1000.0 then Format.fprintf ppf "%8.2fms" (v /. 1000.0)
  else Format.fprintf ppf "%8.1fµs" v

let print_stages events =
  Format.printf "@.== per-stage latency ==@.";
  Format.printf "%-10s %7s %11s %10s %10s %10s %10s@." "stage" "count"
    "total" "p50" "p95" "p99" "max";
  List.iter
    (fun (s : Explorer.stage_stats) ->
      Format.printf "%-10s %7d %9.1fms %a %a %a %a@." s.Explorer.st_name
        s.Explorer.st_count
        (s.Explorer.st_total /. 1000.0)
        pp_us s.Explorer.st_p50 pp_us s.Explorer.st_p95 pp_us
        s.Explorer.st_p99 pp_us s.Explorer.st_max)
    (Explorer.stage_breakdown events)

let print_contention events =
  Format.printf "@.== lock contention ==@.";
  match Explorer.lock_contention events with
  | [] -> Format.printf "no queued lock acquisitions in this trace@."
  | rows ->
      Format.printf "%-8s %7s %10s %12s %12s@." "lock" "waits" "contended"
        "total wait" "max wait";
      List.iter
        (fun (r : Explorer.lock_stats) ->
          Format.printf "l%-7d %7d %10d %a %a@." r.Explorer.lk_lock
            r.Explorer.lk_waits r.Explorer.lk_contended pp_us
            r.Explorer.lk_total_wait pp_us r.Explorer.lk_max_wait)
        rows

let print_critical_path events =
  Format.printf "@.== critical path (slowest transaction) ==@.";
  match Explorer.critical_path events with
  | None -> Format.printf "no txn spans in this trace@."
  | Some (txn, inside) ->
      Format.printf "txn on node %d: start %.1fµs, duration %a@."
        txn.Explorer.pid txn.Explorer.ts pp_us txn.Explorer.dur;
      let accounted = ref 0.0 in
      List.iter
        (fun (ev : Explorer.event) ->
          if ev.Explorer.tid = Lbc_obs.Obs.lane_txn then
            accounted := !accounted +. ev.Explorer.dur;
          Format.printf "  +%a %-10s %a%s@." pp_us
            (ev.Explorer.ts -. txn.Explorer.ts)
            ev.Explorer.name pp_us ev.Explorer.dur
            (match
               List.assoc_opt "lock" ev.Explorer.args
             with
            | Some (Lbc_obs.Json.Num l) ->
                Printf.sprintf "  (lock %d)" (int_of_float l)
            | _ -> ""))
        inside;
      if txn.Explorer.dur > 0.0 then
        Format.printf "accounted inside txn lane: %a (%.0f%%)@." pp_us
          !accounted
          (100.0 *. !accounted /. txn.Explorer.dur)

let print_flows events =
  let f = Explorer.flow_summary events in
  Format.printf
    "@.flows: %d committed writes broadcast, %d applies bound to them@."
    f.Explorer.fl_starts f.Explorer.fl_ends;
  if f.Explorer.fl_unresolved > 0 then
    Format.printf "!! %d flow heads without a matching start@."
      f.Explorer.fl_unresolved

(* ---------------------------------------------------------------- *)
(* Flight-dump mode *)

let flight_report d =
  Flight_dump.pp_summary Format.std_formatter d;
  let merged = Flight_dump.merged d in
  let tally = Hashtbl.create 8 in
  Array.iter
    (fun (ev : Flight_dump.event) ->
      let k = Flight_dump.kind_name ev.Flight_dump.ev_kind in
      Hashtbl.replace tally k
        (1 + Option.value ~default:0 (Hashtbl.find_opt tally k)))
    merged;
  Format.printf "merged: %d events" (Array.length merged);
  List.iter
    (fun k ->
      match Hashtbl.find_opt tally k with
      | Some n -> Format.printf ", %d %ss" n k
      | None -> ())
    [ "span"; "instant"; "count"; "flow-start"; "flow-end" ];
  Format.printf "@.";
  (* Per-stage totals over the surviving window, mirroring the JSON
     explorer's stage table. *)
  let stages = Hashtbl.create 16 in
  Array.iter
    (fun (ev : Flight_dump.event) ->
      if ev.Flight_dump.ev_kind = Flight_dump.Span then begin
        let count, total =
          Option.value ~default:(0, 0)
            (Hashtbl.find_opt stages ev.Flight_dump.ev_name)
        in
        Hashtbl.replace stages ev.Flight_dump.ev_name
          (count + 1, total + ev.Flight_dump.ev_dur_ns)
      end)
    merged;
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) stages [] in
  let rows =
    List.sort (fun (_, (_, a)) (_, (_, b)) -> Int.compare b a) rows
  in
  if rows <> [] then begin
    Format.printf "@.== spans in the surviving window ==@.";
    Format.printf "%-12s %7s %11s@." "stage" "count" "total";
    List.iter
      (fun (name, (count, total_ns)) ->
        Format.printf "%-12s %7d %a@." name count pp_us
          (float_of_int total_ns /. 1000.0))
      rows
  end

let run_flight file self_check json_out =
  match Flight_dump.read file with
  | Error why ->
      Format.eprintf "%s: %s@." file why;
      exit 2
  | Ok d ->
      let problems = Flight_dump.self_check d in
      if self_check then
        match problems with
        | [] ->
            let total =
              Array.fold_left
                (fun acc r -> acc + Array.length r.Flight_dump.r_events)
                0 d.Flight_dump.d_rings
            in
            Format.printf "%s: OK (%d rings, %d events, clock %s)@." file
              (Array.length d.Flight_dump.d_rings)
              total d.Flight_dump.d_clock;
            exit 0
        | errors ->
            List.iter (fun e -> Format.eprintf "%s: %s@." file e) errors;
            exit 1
      else begin
        flight_report d;
        if problems <> [] then
          Format.printf "!! %d self-check problems (details with --self-check)@."
            (List.length problems);
        match json_out with
        | Some path ->
            let oc = open_out path in
            output_string oc (Flight_dump.render_chrome d);
            close_out oc;
            Format.printf
              "merged Chrome trace written to %s (load in Perfetto)@." path
        | None -> ()
      end

let run file self_check json_out =
  if Flight_dump.is_flight_file file then run_flight file self_check json_out
  else
  match Explorer.load file with
  | Error why ->
      Format.eprintf "%s: %s@." file why;
      exit 2
  | Ok events ->
      if self_check then begin
        match Explorer.self_check events with
        | [] ->
            let f = Explorer.flow_summary events in
            Format.printf
              "%s: OK (%d events, %d flow starts, %d flow ends)@." file
              (List.length events) f.Explorer.fl_starts f.Explorer.fl_ends;
            exit 0
        | errors ->
            List.iter (fun e -> Format.eprintf "%s: %s@." file e) errors;
            exit 1
      end
      else begin
        Format.printf "%s: %d events@." file (List.length events);
        print_stages events;
        print_contention events;
        print_critical_path events;
        print_flows events
      end

let file =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE"
         ~doc:"Chrome trace-event JSON file written by a traced run, or a \
               binary LBCF flight dump (detected by magic).")

let self_check =
  Arg.(value & flag & info [ "self-check" ]
         ~doc:"Validate the trace instead of reporting.  JSON: well-formed \
               JSON, non-negative span durations, monotone instant \
               timestamps per node, and every flow arrow resolving into an \
               apply span.  Flight dumps: per-ring timestamp monotonicity, \
               interned-id closure, clean record decode and drop accounting \
               (recorded = dropped + decoded). Exit 0 if clean, 1 \
               otherwise.")

let json_out =
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"PATH"
         ~doc:"Flight dumps only: additionally write the merged rings as a \
               Perfetto-loadable Chrome trace-event file at $(docv).")

let cmd =
  Cmd.v
    (Cmd.info "lbc-trace"
       ~doc:"Explore a trace of the coherency pipeline"
       ~man:
         [ `S Manpage.s_description;
           `P "Loads a Chrome trace-event file produced by $(b,oo7-run \
               --trace) and prints a per-lock contention table, a per-stage \
               latency breakdown (p50/p95/p99 of span durations), and the \
               critical path of the slowest transaction.  The same file \
               loads in Perfetto for interactive inspection.  Binary LBCF \
               flight dumps (written by $(b,Cluster.dump_flight), \
               $(b,oo7-run --flight), or automatically on \
               strand/crash/oracle failures) are decoded, merged across \
               rings, and summarized; $(b,--json) converts one to Chrome \
               trace JSON." ])
    Term.(const run $ file $ self_check $ json_out)

let () = exit (Cmd.eval cmd)
